//! The fidelity axis: packet-accurate everything, or packet-accurate
//! foreground over a fluid background.
//!
//! [`FidelitySpec`] is to the `fidelity=` grid axis what
//! [`FaultSpec`](crate::fault::FaultSpec) is to `fault=`: a parse/render
//! pair with one canonical string per configuration, so every spelling of
//! the same fidelity shares one cell key, one derived seed and one cache
//! address. The grammar:
//!
//! ```text
//! pkt                 everything packet-level (the default)
//! hybrid              fluid background, packet foreground
//! hybrid{bg=fluid}    same — `fluid` is the only (and default) bg model
//! ```
//!
//! `pkt` is the default and is the only value that keeps the `/fi=`
//! component out of a cell key, so every pre-axis key, derived seed,
//! shard assignment and cache address is unchanged. `hybrid` swaps the
//! cell's *background* workload from per-packet transport to the
//! [`netsim::fluid`] analytic max-min model; the foreground — what the
//! paper measures — stays packet-accurate either way.

/// A fidelity description for one grid cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FidelitySpec {
    /// Full packet fidelity (the default; keys without `/fi=`).
    #[default]
    Pkt,
    /// Packet-level foreground over a fluid background
    /// ([`netsim::fluid::FluidNet`]).
    Hybrid,
}

impl FidelitySpec {
    /// Whether this is the default (`pkt`): the only value that keeps the
    /// `/fi=` component out of a cell key.
    pub fn is_pkt(&self) -> bool {
        matches!(self, FidelitySpec::Pkt)
    }

    /// The canonical label: one string per configuration, parameters at
    /// their defaults omitted, the exact inverse of
    /// [`FidelitySpec::parse`]. Feeds the cell key (as `/fi=<label>`,
    /// only when not `pkt`).
    pub fn label(&self) -> &'static str {
        match self {
            FidelitySpec::Pkt => "pkt",
            FidelitySpec::Hybrid => "hybrid",
        }
    }

    /// Parses any spelling of a fidelity spec — `pkt`, `hybrid`,
    /// `hybrid{bg=fluid}` — into its typed form. Unknown families, keys
    /// and values are reported, never panicked: the input is user text (a
    /// spec file line or a `--fidelity` flag).
    pub fn parse(s: &str) -> Result<FidelitySpec, String> {
        let s = s.trim();
        let (family, params) = match s.find('{') {
            None => (s, Vec::new()),
            Some(i) => {
                let inner = s[i + 1..]
                    .strip_suffix('}')
                    .ok_or_else(|| format!("fidelity spec {s:?}: missing closing brace"))?;
                let mut params = Vec::new();
                for kv in inner.split(',') {
                    let kv = kv.trim();
                    if kv.is_empty() {
                        continue;
                    }
                    let (k, v) = kv.split_once('=').ok_or_else(|| {
                        format!("fidelity spec {s:?}: parameter {kv:?} is not key=value")
                    })?;
                    params.push((k.trim(), v.trim()));
                }
                (&s[..i], params)
            }
        };
        let ctx = |e: String| format!("fidelity spec {s:?}: {e}");
        match family {
            "pkt" => {
                if !params.is_empty() {
                    return Err(ctx("pkt takes no parameters".to_string()));
                }
                Ok(FidelitySpec::Pkt)
            }
            "hybrid" => {
                for (k, v) in params {
                    match k {
                        "bg" => {
                            if v != "fluid" {
                                return Err(ctx(format!("unknown background model {v:?} (fluid)")));
                            }
                        }
                        other => {
                            return Err(ctx(format!("unknown hybrid parameter {other:?} (bg)")))
                        }
                    }
                }
                Ok(FidelitySpec::Hybrid)
            }
            other => Err(format!("unknown fidelity family {other:?} (pkt, hybrid)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_labels_omit_defaults() {
        let roundtrip = |s: &str| FidelitySpec::parse(s).expect(s).label();
        assert_eq!(roundtrip("pkt"), "pkt");
        assert_eq!(roundtrip("hybrid"), "hybrid");
        assert_eq!(
            roundtrip("hybrid{bg=fluid}"),
            "hybrid",
            "default bg collapses"
        );
        assert_eq!(roundtrip(" hybrid "), "hybrid");
    }

    #[test]
    fn default_is_pkt() {
        assert_eq!(FidelitySpec::default(), FidelitySpec::Pkt);
        assert!(FidelitySpec::Pkt.is_pkt());
        assert!(!FidelitySpec::Hybrid.is_pkt());
    }

    #[test]
    fn parse_errors_name_the_problem() {
        let err = |s: &str| FidelitySpec::parse(s).unwrap_err();
        assert!(err("fluid").contains("unknown fidelity family"));
        assert!(err("pkt{bg=fluid}").contains("no parameters"));
        assert!(err("hybrid{bg=packet}").contains("unknown background model"));
        assert!(err("hybrid{mode=x}").contains("unknown hybrid parameter"));
        assert!(err("hybrid{bg=fluid").contains("missing closing brace"));
        assert!(err("hybrid{bg}").contains("not key=value"));
    }

    #[test]
    fn parse_render_round_trips() {
        for spec in [FidelitySpec::Pkt, FidelitySpec::Hybrid] {
            assert_eq!(FidelitySpec::parse(spec.label()), Ok(spec));
        }
    }
}
