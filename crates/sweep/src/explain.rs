//! `repsbench explain`: render a per-cell trace document into a
//! human-readable account of what the cell's load balancer actually did.
//!
//! The summary JSONL says a REPS cell finished in N µs; the trace says
//! *why*: how often the balancer recycled a proven entropy versus drawing
//! fresh, how often it switched paths, how deep the receiver's reorder
//! window ran, and — under a failure plan — the exact timeline of
//! link-down, timeout, freeze, retransmit and thaw. [`explain_doc`] takes
//! the raw `*.trace.jsonl` contents ([`crate::trace`]) and produces that
//! report; the CLI wires it to `repsbench explain FILE`.

use std::collections::BTreeMap;

use harness::json::Value;

/// Maximum failure-reaction timeline rows before eliding the middle.
const TIMELINE_CAP: usize = 30;

fn us(t_ps: u64) -> String {
    format!("{:.3}us", t_ps as f64 / 1e6)
}

#[derive(Default)]
struct Tally {
    fresh: u64,
    recycled: u64,
    frozen: u64,
    path_choices: u64,
    ev_changes: u64,
    senders: BTreeMap<(u64, u64), u64>,
    retransmits: u64,
    timeouts: u64,
    expired: u64,
    freezes: u64,
    thaws: u64,
    reorders: u64,
    reorder_hist: BTreeMap<u32, u64>,
    max_depth: u64,
    timeline: Vec<String>,
    timeline_total: usize,
}

/// The log2-style histogram bucket for a reorder depth: 1, 2, 3-4, 5-8, …
fn depth_bucket(depth: u64) -> u32 {
    let mut hi = 1u64;
    let mut b = 0u32;
    while depth > hi {
        hi *= 2;
        b += 1;
    }
    b
}

fn bucket_label(b: u32) -> String {
    if b <= 1 {
        format!("{}", 1u64 << b)
    } else {
        format!("{}-{}", (1u64 << (b - 1)) + 1, 1u64 << b)
    }
}

/// Renders the report for one trace document. Errors (not a trace file,
/// torn line) come back as messages, never panics — the input is a
/// user-supplied path.
pub fn explain_doc(doc: &str) -> Result<String, String> {
    let mut lines = doc.lines();
    let header = lines.next().ok_or("empty trace document")?;
    let header = Value::parse(header).map_err(|e| format!("bad trace header: {e}"))?;
    let key = header
        .get("key")
        .and_then(Value::as_str)
        .ok_or("trace header has no \"key\" — not a trace document?")?
        .to_string();
    let declared = header
        .get("events")
        .and_then(Value::as_u64)
        .ok_or("trace header has no \"events\" count")?;

    let mut t = Tally::default();
    let mut last_ev: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut parsed = 0u64;
    for (i, line) in lines.enumerate() {
        let v = Value::parse(line).map_err(|e| format!("trace line {}: {e}", i + 2))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace line {}: no \"kind\"", i + 2))?;
        let at = v.get("t").and_then(Value::as_u64).unwrap_or(0);
        let field = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        parsed += 1;
        match kind {
            "path_choice" => t.path_choices += 1,
            "ev_choice" => {
                match v.get("decision").and_then(Value::as_str) {
                    Some("fresh") => t.fresh += 1,
                    Some("recycled") => t.recycled += 1,
                    Some("frozen") => t.frozen += 1,
                    _ => {}
                }
                let sender = (field("host"), field("conn"));
                let ev = field("ev");
                if let Some(&prev) = last_ev.get(&sender) {
                    if prev != ev {
                        t.ev_changes += 1;
                    }
                }
                last_ev.insert(sender, ev);
                *t.senders.entry(sender).or_insert(0) += 1;
            }
            "reorder" => {
                let depth = field("depth");
                t.reorders += 1;
                t.max_depth = t.max_depth.max(depth);
                *t.reorder_hist.entry(depth_bucket(depth)).or_insert(0) += 1;
            }
            "retransmit" => t.retransmits += 1,
            "timeout" => {
                t.timeouts += 1;
                t.expired += field("expired");
                t.push_timeline(format!(
                    "{:>14}  timeout    host {} conn {} expired {} in-flight",
                    us(at),
                    field("host"),
                    field("conn"),
                    field("expired")
                ));
            }
            "freeze" => {
                t.freezes += 1;
                t.push_timeline(format!(
                    "{:>14}  freeze     host {} conn {} replays last good EVs",
                    us(at),
                    field("host"),
                    field("conn")
                ));
            }
            "thaw" => {
                t.thaws += 1;
                t.push_timeline(format!(
                    "{:>14}  thaw       host {} conn {} resumes recycling",
                    us(at),
                    field("host"),
                    field("conn")
                ));
            }
            "link_down" => {
                t.push_timeline(format!("{:>14}  link_down  link {}", us(at), field("link")))
            }
            "link_up" => {
                t.push_timeline(format!("{:>14}  link_up    link {}", us(at), field("link")))
            }
            "link_rate" => t.push_timeline(format!(
                "{:>14}  link_rate  link {} -> {} bps",
                us(at),
                field("link"),
                field("bps")
            )),
            "link_ber" => {
                t.push_timeline(format!("{:>14}  link_ber   link {}", us(at), field("link")))
            }
            "link_gray" | "link_corrupt" => {
                let what = if kind == "link_gray" {
                    "gray loss"
                } else {
                    "corruption"
                };
                let phase = match v.get("on").and_then(Value::as_bool) {
                    Some(false) => "heals",
                    _ => "begins",
                };
                t.push_timeline(format!(
                    "{:>14}  {:<10} link {} {what} {phase}",
                    us(at),
                    kind,
                    field("link")
                ));
            }
            "fluid_resolve" => t.push_timeline(format!(
                "{:>14}  fluid      re-solve: {} bg flows active, {} links updated",
                us(at),
                field("active"),
                field("updated")
            )),
            "switch_down" => {
                t.push_timeline(format!("{:>14}  sw_down    switch {}", us(at), field("sw")))
            }
            "switch_up" => {
                t.push_timeline(format!("{:>14}  sw_up      switch {}", us(at), field("sw")))
            }
            _ => {}
        }
    }
    if parsed != declared {
        return Err(format!(
            "trace header declares {declared} events but the document has {parsed} — truncated?"
        ));
    }

    Ok(t.render(&key))
}

impl Tally {
    fn push_timeline(&mut self, line: String) {
        self.timeline_total += 1;
        if self.timeline.len() < TIMELINE_CAP {
            self.timeline.push(line);
        }
    }

    fn render(&self, key: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {key}\n\n"));

        let choices = self.fresh + self.recycled + self.frozen;
        out.push_str("## EV decisions\n");
        if choices == 0 {
            out.push_str("no ev_choice events recorded\n");
        } else {
            let pct = |n: u64| 100.0 * n as f64 / choices as f64;
            out.push_str(&format!(
                "{choices} choices across {} sender connections\n",
                self.senders.len()
            ));
            out.push_str(&format!(
                "  fresh draws     {:>8}  ({:.1}%)\n",
                self.fresh,
                pct(self.fresh)
            ));
            out.push_str(&format!(
                "  recycled        {:>8}  ({:.1}%)\n",
                self.recycled,
                pct(self.recycled)
            ));
            out.push_str(&format!(
                "  frozen replays  {:>8}  ({:.1}%)\n",
                self.frozen,
                pct(self.frozen)
            ));
            out.push_str(&format!(
                "  reuse rate {:.1}% (recycled + frozen of all choices)\n",
                pct(self.recycled + self.frozen)
            ));
            out.push_str(&format!(
                "  ev changed on {} of {} consecutive sends per connection\n",
                self.ev_changes,
                choices.saturating_sub(self.senders.len() as u64)
            ));
        }

        out.push_str("\n## Path choices\n");
        out.push_str(&format!(
            "{} per-hop spray decisions recorded\n",
            self.path_choices
        ));

        out.push_str("\n## Reordering\n");
        if self.reorders == 0 {
            out.push_str("no out-of-order arrivals\n");
        } else {
            out.push_str(&format!(
                "{} out-of-order arrivals, max depth {}\n",
                self.reorders, self.max_depth
            ));
            out.push_str("depth histogram:\n");
            let max = self.reorder_hist.values().copied().max().unwrap_or(1);
            for (&b, &n) in &self.reorder_hist {
                let bar = "#".repeat(((n as f64 / max as f64) * 40.0).ceil() as usize);
                out.push_str(&format!("  {:>9} {:>8}  {bar}\n", bucket_label(b), n));
            }
        }

        out.push_str("\n## Failure reactions\n");
        out.push_str(&format!(
            "{} timeouts ({} packets expired), {} retransmits, {} freezes, {} thaws\n",
            self.timeouts, self.expired, self.retransmits, self.freezes, self.thaws
        ));
        if self.timeline.is_empty() {
            out.push_str("no failure or reaction events\n");
        } else {
            out.push_str("timeline:\n");
            for l in &self.timeline {
                out.push_str(l);
                out.push('\n');
            }
            if self.timeline_total > self.timeline.len() {
                out.push_str(&format!(
                    "  ... {} more events\n",
                    self.timeline_total - self.timeline.len()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{Instrument, ScenarioMatrix};
    use crate::spec::{FailureSpec, WorkloadSpec};
    use netsim::time::Time;

    #[test]
    fn depth_buckets_are_log2_ranges() {
        assert_eq!(depth_bucket(1), 0);
        assert_eq!(depth_bucket(2), 1);
        assert_eq!(depth_bucket(3), 2);
        assert_eq!(depth_bucket(4), 2);
        assert_eq!(depth_bucket(5), 3);
        assert_eq!(depth_bucket(8), 3);
        assert_eq!(depth_bucket(9), 4);
        assert_eq!(bucket_label(0), "1");
        assert_eq!(bucket_label(1), "2");
        assert_eq!(bucket_label(2), "3-4");
        assert_eq!(bucket_label(3), "5-8");
    }

    #[test]
    fn malformed_documents_report_errors() {
        assert!(explain_doc("").is_err());
        assert!(explain_doc("not json\n").is_err());
        // Wrong header shape.
        assert!(explain_doc("{\"links\":3}\n").unwrap_err().contains("key"));
        // Declared count disagrees with the body.
        let torn = "{\"key\":\"k\",\"derived_seed\":1,\"events\":5}\n";
        assert!(explain_doc(torn).unwrap_err().contains("truncated"));
    }

    #[test]
    fn explains_a_reps_cell_under_link_failure() {
        // A REPS cell under a mid-run link failure: the acceptance
        // scenario — the report must show a nonzero EV reuse rate, the
        // reorder histogram and the failure-reaction timeline.
        let cell = ScenarioMatrix::new("explain-unit")
            .workloads([WorkloadSpec::Permutation { bytes: 1 << 20 }])
            .failures([FailureSpec::OneCable {
                at: Time::from_us(30),
                duration: None,
            }])
            .expand()
            .into_iter()
            .find(|c| c.lb.label == "REPS")
            .expect("REPS cell");
        let out = cell.run_instrumented(Instrument {
            trace: true,
            ..Instrument::default()
        });
        let report = explain_doc(&out.trace_doc.expect("trace requested")).expect("report");
        assert!(report.contains(&cell.key()), "{report}");
        assert!(report.contains("reuse rate"), "{report}");
        assert!(!report.contains("reuse rate 0.0%"), "{report}");
        assert!(report.contains("depth histogram"), "{report}");
        assert!(report.contains("link_down"), "{report}");
        assert!(report.contains("timeout"), "{report}");
        assert!(report.contains("retransmits"), "{report}");
    }

    #[test]
    fn explains_a_fault_timeline() {
        // A gray fault with a heal: the timeline must show both the onset
        // and the heal, in fault vocabulary rather than raw field dumps.
        let cell = ScenarioMatrix::new("explain-fault-unit")
            .workloads([WorkloadSpec::Permutation { bytes: 1 << 18 }])
            .faults([crate::fault::FaultSpec::parse("gray{p=0.2,at=5us,for=40us}").unwrap()])
            .expand()
            .into_iter()
            .find(|c| c.lb.label == "REPS")
            .expect("REPS cell");
        let out = cell.run_instrumented(Instrument {
            trace: true,
            ..Instrument::default()
        });
        let report = explain_doc(&out.trace_doc.expect("trace requested")).expect("report");
        assert!(report.contains("link_gray"), "{report}");
        assert!(report.contains("gray loss begins"), "{report}");
        assert!(report.contains("gray loss heals"), "{report}");
    }
}
