//! `repsbench` — run the REPS scenario-sweep suite from the command line.
//!
//! ```text
//! repsbench list [--scale quick|full] [--spec-file PATH]...
//! repsbench run [--filter GLOB] [--threads N] [--scale quick|full]
//!               [--seeds N] [--shard I/N] [--cache DIR]
//!               [--spec-file PATH]... [--series DIR]
//!               [--out PATH] [--perf PATH] [--baseline LABEL] [--quiet]
//! repsbench merge OUT IN... [--baseline LABEL] [--quiet]
//! ```
//!
//! `list` prints every preset with its cell count; `run` expands the
//! presets whose names match `--filter` (default `*`), executes all cells
//! on a work-stealing pool and writes one JSON Lines record per cell to
//! `--out` (default `results.jsonl`; `-` = stdout), then prints cross-seed
//! aggregate tables. Output is byte-identical for any `--threads` value.
//! `--scale` defaults to the `REPS_SCALE` environment variable (`quick`).
//!
//! # User-defined grids (`--spec-file`)
//!
//! New scenarios are a text file, not a code change: each `--spec-file`
//! adds the scenario matrices of a line-oriented grid file (grammar in
//! [`sweep::specfile`]) to the preset pool — they list, filter, shard,
//! cache and sink exactly like built-ins. A name collision with a built-in
//! preset (or between spec files) is an error, never a silent preference.
//! A grid file holds any number of `[name]` sections; `axis = v1, v2`
//! lines widen that matrix's axes using the same stable labels cell keys
//! are built from, omitted axes keep their defaults, and `#` comments:
//!
//! ```text
//! # REPS vs. OPS as the fabric gets oversubscribed, healthy vs. degraded.
//! [oversub-grid]
//! fabric   = ls-8x8-o1, ls-8x8-o2, ls-8x8-o4
//! lb       = OPS, REPS
//! workload = perm-131072B
//! failure  = none, degraded10pct-200G
//! seed     = 0, 1
//!
//! # How fast must routing reconverge before spraying rides out a cut?
//! [reconv-grid]
//! lb       = OPS, REPS
//! workload = perm-262144B
//! failure  = cable1-at8us-perm
//! reconv   = none, 25us, 100us
//! ```
//!
//! ```text
//! repsbench run --spec-file examples/oversub.grid --filter '*-grid'
//! ```
//!
//! Axes: `fabric` (`2t-kK-oO`, `3t-kK-oO`, `ls-TxH-oO`,
//! `2t-custom-TxH-uU`), `lb` (paper legend names plus `REPS-nofreeze`,
//! `REPS+freeze@Nus`), `workload` (`tornado-NB`, `perm-NB`,
//! `incastDto1-NB`, `ringar-NB`, `bflyar-NB`, `a2a-wW-NB`,
//! `dctrace-Ppct-Tus`), `failure` (the cell-key failure labels), `reconv`
//! (`none` or a delay like `25us`), `seed`, `cc`, `coalesce`, and the
//! single-valued `sim`, `background` (`workload+LB`), `deadline`. Parse
//! errors name their line number.
//!
//! # Per-cell time series (`--series DIR`)
//!
//! `--series DIR` additionally streams every executed cell's
//! link-utilization buckets and queue-occupancy samples (ToR 0's uplinks,
//! the micro figures' vantage point) into
//! `DIR/<derived_seed hex>.series.jsonl`. Line 1 is a header, then one
//! record per tracked link:
//!
//! ```text
//! {"key":...,"derived_seed":N,"bucket_width_ps":N,"sample_period_ps":N,"links":N}
//! {"link":N,"bucket_bytes":[...],"queue_samples":[[at_ps,bytes],...]}
//! ```
//!
//! Series documents are pure functions of cell keys — identical across
//! `--threads` values and shard splits (shards may share one directory or
//! be unioned later) — and fully separate from the byte-stable result
//! stream, which is unchanged by the flag. With `--cache`, a cached cell
//! only skips execution when its series document already exists; pointing
//! a warm cache at an empty series directory re-runs the cells. See
//! [`sweep::series`] for the full schema.
//!
//! # Sharded (fleet) sweeps
//!
//! `--shard I/N` keeps only the cells whose key hash lands in shard `I` of
//! `N` (1-based) — a pure function of each cell key, so filters never skew
//! the partition and every cell lands in exactly one shard. `merge` unions
//! shard files, rejects duplicate keys, re-sorts by key and re-renders the
//! aggregate tables; the merged JSONL is byte-identical to an unsharded
//! run. Splitting the full suite across two boxes:
//!
//! ```text
//! boxA$ repsbench run --scale full --shard 1/2 --out shard1.jsonl
//! boxB$ repsbench run --scale full --shard 2/2 --out shard2.jsonl
//!       # copy shard2.jsonl to boxA, then:
//! boxA$ repsbench merge full.jsonl shard1.jsonl shard2.jsonl
//! ```
//!
//! # Incremental sweeps
//!
//! `--cache DIR` reuses per-cell results recorded by an earlier run of the
//! *same build* (entries are namespaced by a compiled-in `git describe`
//! fingerprint, addressed by derived seed, and validated against the full
//! cell key). Hits are byte-identical to fresh runs; the footer reports
//! hit/miss counts, and a fully warm re-run executes nothing.
//!
//! `--perf` additionally writes one JSONL record per *executed* cell with
//! its event count, wall time and events/sec (a *separate* file because
//! wall time is nondeterministic and `--out` is byte-stable; cache hits
//! have no fresh perf counters, so they are omitted); the run footer
//! reports aggregate simulator events/sec over the executed cells.

use std::io::Write;
use std::process::ExitCode;

use harness::Scale;
use sweep::matrix::Cell;
use sweep::{
    events_per_sec, glob, merge_files, presets, render_aggregates, run_cells_sinked, specfile,
    CellCache, ScenarioMatrix, SeriesSink, Shard,
};

#[derive(Debug)]
struct RunOpts {
    filter: String,
    threads: usize,
    scale: Scale,
    seeds: Option<u32>,
    shard: Option<Shard>,
    cache: Option<String>,
    spec_files: Vec<String>,
    series: Option<String>,
    out: String,
    perf: Option<String>,
    baseline: String,
    quiet: bool,
}

#[derive(Debug)]
struct ListOpts {
    scale: Scale,
    spec_files: Vec<String>,
}

/// The run's matrix pool: every built-in preset at `scale` plus the
/// matrices of each `--spec-file`, rejecting name collisions (a spec file
/// shadowing a built-in would otherwise silently lose to it).
fn matrix_pool(scale: Scale, spec_files: &[String]) -> Result<Vec<ScenarioMatrix>, String> {
    let mut pool = presets::all(scale);
    for path in spec_files {
        pool.extend(specfile::parse_file(path)?);
    }
    presets::ensure_unique_names(&pool)?;
    Ok(pool)
}

#[derive(Debug)]
struct MergeOpts {
    out: String,
    inputs: Vec<String>,
    baseline: String,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage:\n  repsbench list [--scale quick|full] [--spec-file PATH]...\n  repsbench run [--filter GLOB] [--threads N] [--scale quick|full]\n                [--seeds N] [--shard I/N] [--cache DIR]\n                [--spec-file PATH]... [--series DIR]\n                [--out PATH|-] [--perf PATH] [--baseline LABEL] [--quiet]\n  repsbench merge OUT IN... [--baseline LABEL] [--quiet]"
}

fn parse_scale(v: &str) -> Result<Scale, String> {
    if v.eq_ignore_ascii_case("quick") {
        Ok(Scale::Quick)
    } else if v.eq_ignore_ascii_case("full") {
        Ok(Scale::Full)
    } else {
        Err(format!("unknown scale {v:?} (expected quick or full)"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => match parse_list(&args[1..]) {
            Ok(opts) => list(&opts),
            Err(e) => fail(&e),
        },
        Some("run") => match parse_run(&args[1..]) {
            Ok(opts) => run(&opts),
            Err(e) => fail(&e),
        },
        Some("merge") => match parse_merge(&args[1..]) {
            Ok(opts) => merge(&opts),
            Err(e) => fail(&e),
        },
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => fail(usage()),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn parse_list(args: &[String]) -> Result<ListOpts, String> {
    let mut opts = ListOpts {
        scale: Scale::from_env(),
        spec_files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = parse_scale(v)?;
            }
            "--spec-file" => {
                let v = it.next().ok_or("--spec-file needs a value")?;
                opts.spec_files.push(v.clone());
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        filter: "*".to_string(),
        threads: sweep::default_threads(),
        scale: Scale::from_env(),
        seeds: None,
        shard: None,
        cache: None,
        spec_files: Vec::new(),
        series: None,
        out: "results.jsonl".to_string(),
        perf: None,
        baseline: "OPS".to_string(),
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--filter" => opts.filter = value("--filter")?.clone(),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--seeds" => {
                let n = value("--seeds")?
                    .parse::<u32>()
                    .map_err(|e| format!("--seeds: {e}"))?;
                if n == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
                opts.seeds = Some(n);
            }
            "--shard" => opts.shard = Some(Shard::parse(value("--shard")?)?),
            "--cache" => opts.cache = Some(value("--cache")?.clone()),
            "--spec-file" => opts.spec_files.push(value("--spec-file")?.clone()),
            "--series" => opts.series = Some(value("--series")?.clone()),
            "--out" => opts.out = value("--out")?.clone(),
            "--perf" => opts.perf = Some(value("--perf")?.clone()),
            "--baseline" => opts.baseline = value("--baseline")?.clone(),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn parse_merge(args: &[String]) -> Result<MergeOpts, String> {
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut baseline = "OPS".to_string();
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = it.next().ok_or("--baseline needs a value")?.clone();
            }
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?}\n{}", usage()));
            }
            path => {
                if out.is_none() {
                    out = Some(path.to_string());
                } else {
                    inputs.push(path.to_string());
                }
            }
        }
    }
    let out = out.ok_or_else(|| format!("merge needs an output path\n{}", usage()))?;
    if inputs.is_empty() {
        return Err(format!("merge needs at least one input shard\n{}", usage()));
    }
    if inputs.contains(&out) {
        return Err(format!("merge output {out:?} is also an input"));
    }
    Ok(MergeOpts {
        out,
        inputs,
        baseline,
        quiet,
    })
}

fn list(opts: &ListOpts) -> ExitCode {
    let pool = match matrix_pool(opts.scale, &opts.spec_files) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    println!(
        "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>6}",
        "preset", "cells", "lbs", "wl", "fail", "fab", "rc", "seeds"
    );
    let mut total = 0usize;
    for m in pool {
        total += m.len();
        println!(
            "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>6}",
            m.name,
            m.len(),
            m.lbs.len(),
            m.workloads.len(),
            m.failures.len(),
            m.fabrics.len(),
            m.reconv.len(),
            m.seeds.len(),
        );
    }
    println!("{total} cells total at {:?} scale", opts.scale);
    ExitCode::SUCCESS
}

/// Writes `text` to `path`, with `-` meaning stdout.
fn write_output(path: &str, text: &str) -> std::io::Result<()> {
    if path == "-" {
        let mut out = std::io::stdout().lock();
        out.write_all(text.as_bytes())?;
        out.flush()
    } else {
        std::fs::write(path, text)
    }
}

fn run(opts: &RunOpts) -> ExitCode {
    let pool = match matrix_pool(opts.scale, &opts.spec_files) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut cells: Vec<Cell> = Vec::new();
    let mut matched = 0usize;
    for mut m in pool {
        if !glob::matches(&opts.filter, &m.name) {
            continue;
        }
        matched += 1;
        if let Some(n) = opts.seeds {
            m = m.seeds(n);
        }
        cells.extend(m.expand());
    }
    if matched == 0 {
        return fail(&format!("no preset matches filter {:?}", opts.filter));
    }
    let total = cells.len();
    if let Some(shard) = opts.shard {
        cells = shard.select(cells);
    }
    let cache = match &opts.cache {
        None => None,
        Some(dir) => match CellCache::open_versioned(dir) {
            Ok(c) => Some(c),
            Err(e) => return fail(&format!("opening cache {dir}: {e}")),
        },
    };
    let series = match &opts.series {
        None => None,
        Some(dir) => match SeriesSink::create(dir) {
            Ok(s) => Some(s),
            Err(e) => return fail(&format!("opening series directory {dir}: {e}")),
        },
    };
    if !opts.quiet {
        let sharding = match opts.shard {
            Some(s) => format!(" (shard {s} of {total} cells)"),
            None => String::new(),
        };
        eprintln!(
            "{} preset(s), {} cells{}, {} thread(s), {:?} scale",
            matched,
            cells.len(),
            sharding,
            opts.threads,
            opts.scale
        );
    }
    let start = std::time::Instant::now();
    let outcome = run_cells_sinked(&cells, opts.threads, cache.as_ref(), series.as_ref());
    let elapsed = start.elapsed();
    let results = &outcome.results;
    if outcome.store_errors > 0 {
        // Best-effort: a full disk must not cost the sweep its results.
        eprintln!(
            "warning: failed to store {} result(s) in cache {}",
            outcome.store_errors,
            opts.cache.as_deref().unwrap_or("")
        );
    }
    if outcome.series_errors > 0 {
        eprintln!(
            "warning: failed to write {} series document(s) in {}",
            outcome.series_errors,
            opts.series.as_deref().unwrap_or("")
        );
    }
    if let (Some(dir), false) = (&opts.series, opts.quiet) {
        eprintln!(
            "wrote {} series document(s) to {dir}",
            outcome.executed.len() - outcome.series_errors
        );
    }

    if let Err(e) = write_output(&opts.out, &sweep::to_jsonl(results)) {
        return fail(&format!("writing {}: {e}", opts.out));
    }
    if !opts.quiet && opts.out != "-" {
        eprintln!("wrote {} records to {}", results.len(), opts.out);
    }

    if let Some(perf_path) = &opts.perf {
        let written = std::fs::File::create(perf_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            for r in outcome.executed_results() {
                writeln!(w, "{}", sweep::perf_record(r))?;
            }
            w.flush()
        });
        if let Err(e) = written {
            return fail(&format!("writing {perf_path}: {e}"));
        }
        if !opts.quiet {
            eprintln!(
                "wrote {} perf records to {perf_path}",
                outcome.executed.len()
            );
        }
    }

    if !opts.quiet {
        // Aggregates go to stderr when JSONL owns stdout.
        let tables = render_aggregates(results, &opts.baseline);
        if opts.out == "-" {
            eprint!("{tables}");
        } else {
            print!("{tables}");
        }
        let incomplete = results.iter().filter(|r| !r.summary.completed).count();
        let (events, rate) = events_per_sec(outcome.executed_results());
        let caching = match opts.cache {
            Some(_) => format!(" ({} cached, {} executed)", outcome.hits, outcome.misses),
            None => String::new(),
        };
        eprintln!(
            "{} cells{} in {:.1}s ({} hit the deadline); {:.1}M events at {:.2}M events/s/core",
            results.len(),
            caching,
            elapsed.as_secs_f64(),
            incomplete,
            events as f64 / 1e6,
            rate / 1e6,
        );
    }
    ExitCode::SUCCESS
}

fn merge(opts: &MergeOpts) -> ExitCode {
    let merged = match merge_files(&opts.inputs) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    if let Err(e) = write_output(&opts.out, &merged.to_jsonl()) {
        return fail(&format!("writing {}: {e}", opts.out));
    }
    if !opts.quiet {
        if opts.out != "-" {
            eprintln!(
                "merged {} records from {} shard(s) into {}",
                merged.results.len(),
                opts.inputs.len(),
                opts.out
            );
        }
        let tables = render_aggregates(&merged.results, &opts.baseline);
        if opts.out == "-" {
            eprint!("{tables}");
        } else {
            print!("{tables}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_defaults_are_sensible() {
        let o = parse_run(&[]).expect("no args is valid");
        assert_eq!(o.filter, "*");
        assert!(o.threads >= 1);
        assert_eq!(o.seeds, None);
        assert_eq!(o.shard, None);
        assert_eq!(o.cache, None);
        assert!(o.spec_files.is_empty());
        assert_eq!(o.series, None);
        assert_eq!(o.out, "results.jsonl");
        assert_eq!(o.perf, None);
        assert_eq!(o.baseline, "OPS");
        assert!(!o.quiet);
    }

    #[test]
    fn run_parses_every_flag() {
        let o = parse_run(&sv(&[
            "--filter",
            "fig0*",
            "--threads",
            "8",
            "--scale",
            "full",
            "--seeds",
            "5",
            "--shard",
            "2/4",
            "--cache",
            "/tmp/c",
            "--spec-file",
            "a.grid",
            "--spec-file",
            "b.grid",
            "--series",
            "series-out",
            "--out",
            "-",
            "--perf",
            "p.jsonl",
            "--baseline",
            "REPS",
            "--quiet",
        ]))
        .expect("all flags valid");
        assert_eq!(o.filter, "fig0*");
        assert_eq!(o.threads, 8);
        assert!(matches!(o.scale, Scale::Full));
        assert_eq!(o.seeds, Some(5));
        assert_eq!(o.shard, Some(Shard { index: 2, count: 4 }));
        assert_eq!(o.cache.as_deref(), Some("/tmp/c"));
        assert_eq!(o.spec_files, vec!["a.grid", "b.grid"]);
        assert_eq!(o.series.as_deref(), Some("series-out"));
        assert_eq!(o.out, "-");
        assert_eq!(o.perf.as_deref(), Some("p.jsonl"));
        assert_eq!(o.baseline, "REPS");
        assert!(o.quiet);
    }

    #[test]
    fn zero_threads_and_zero_seeds_are_rejected_not_clamped() {
        let err = parse_run(&sv(&["--threads", "0"])).expect_err("0 threads");
        assert!(err.contains("--threads"), "{err}");
        let err = parse_run(&sv(&["--seeds", "0"])).expect_err("0 seeds");
        assert!(err.contains("--seeds"), "{err}");
    }

    #[test]
    fn malformed_run_arguments_are_rejected() {
        for bad in [
            sv(&["--threads"]),
            sv(&["--threads", "x"]),
            sv(&["--threads", "-2"]),
            sv(&["--seeds", "1.5"]),
            sv(&["--scale", "medium"]),
            sv(&["--shard", "0/2"]),
            sv(&["--shard", "3/2"]),
            sv(&["--shard", "2"]),
            sv(&["--cache"]),
            sv(&["--bogus"]),
            sv(&["extra"]),
        ] {
            assert!(parse_run(&bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn list_parser_accepts_scale_and_spec_files() {
        assert!(parse_list(&[]).is_ok());
        assert!(matches!(
            parse_list(&sv(&["--scale", "full"])),
            Ok(ListOpts {
                scale: Scale::Full,
                ..
            })
        ));
        let o = parse_list(&sv(&["--spec-file", "g.grid"])).expect("spec file accepted");
        assert_eq!(o.spec_files, vec!["g.grid"]);
        assert!(parse_list(&sv(&["--scale", "nope"])).is_err());
        assert!(parse_list(&sv(&["--filter", "x"])).is_err());
        assert!(parse_list(&sv(&["--spec-file"])).is_err());
    }

    #[test]
    fn matrix_pool_rejects_spec_shadowing_a_builtin() {
        let dir = std::env::temp_dir().join(format!("repsbench-shadow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shadow.grid");
        std::fs::write(&path, "[fig02-tornado-micro]\nlb = OPS\n").unwrap();
        let err = matrix_pool(Scale::Quick, &[path.to_string_lossy().into_owned()])
            .expect_err("shadowing a built-in preset must fail");
        assert!(err.contains("fig02-tornado-micro"), "{err}");
        // A non-colliding grid joins the pool.
        std::fs::write(&path, "[my-grid]\nlb = OPS\n").unwrap();
        let pool = matrix_pool(Scale::Quick, &[path.to_string_lossy().into_owned()])
            .expect("fresh name joins the pool");
        assert!(pool.iter().any(|m| m.name == "my-grid"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_parser_wants_out_then_inputs() {
        let o = parse_merge(&sv(&[
            "full.jsonl",
            "a.jsonl",
            "b.jsonl",
            "--baseline",
            "REPS",
            "--quiet",
        ]))
        .expect("valid merge");
        assert_eq!(o.out, "full.jsonl");
        assert_eq!(o.inputs, vec!["a.jsonl", "b.jsonl"]);
        assert_eq!(o.baseline, "REPS");
        assert!(o.quiet);

        assert!(parse_merge(&[]).is_err(), "no output");
        assert!(parse_merge(&sv(&["out.jsonl"])).is_err(), "no inputs");
        assert!(
            parse_merge(&sv(&["x.jsonl", "x.jsonl"])).is_err(),
            "output aliases an input"
        );
        assert!(parse_merge(&sv(&["out.jsonl", "a.jsonl", "--bogus"])).is_err());
    }

    #[test]
    fn scale_parses_case_insensitively() {
        assert!(matches!(parse_scale("QUICK"), Ok(Scale::Quick)));
        assert!(matches!(parse_scale("Full"), Ok(Scale::Full)));
        assert!(parse_scale("huge").is_err());
    }
}
