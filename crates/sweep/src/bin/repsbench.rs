//! `repsbench` — run the REPS scenario-sweep suite from the command line.
//!
//! ```text
//! repsbench list [--scale quick|full]
//! repsbench run [--filter GLOB] [--threads N] [--scale quick|full]
//!               [--seeds N] [--out PATH] [--perf PATH]
//!               [--baseline LABEL] [--quiet]
//! ```
//!
//! `list` prints every preset with its cell count; `run` expands the
//! presets whose names match `--filter` (default `*`), executes all cells
//! on a work-stealing pool and writes one JSON Lines record per cell to
//! `--out` (default `results.jsonl`; `-` = stdout), then prints cross-seed
//! aggregate tables. Output is byte-identical for any `--threads` value.
//! `--scale` defaults to the `REPS_SCALE` environment variable (`quick`).
//!
//! `--perf` additionally writes one JSONL record per cell with its event
//! count, wall time and events/sec (a *separate* file because wall time is
//! nondeterministic and `--out` is byte-stable); the run footer always
//! reports aggregate simulator events/sec.

use std::io::Write;
use std::process::ExitCode;

use harness::Scale;
use sweep::matrix::Cell;
use sweep::{events_per_sec, glob, presets, render_aggregates, run_cells, write_jsonl};

struct RunOpts {
    filter: String,
    threads: usize,
    scale: Scale,
    seeds: Option<u32>,
    out: String,
    perf: Option<String>,
    baseline: String,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage:\n  repsbench list [--scale quick|full]\n  repsbench run [--filter GLOB] [--threads N] [--scale quick|full]\n                [--seeds N] [--out PATH|-] [--perf PATH] [--baseline LABEL] [--quiet]"
}

fn parse_scale(v: &str) -> Result<Scale, String> {
    if v.eq_ignore_ascii_case("quick") {
        Ok(Scale::Quick)
    } else if v.eq_ignore_ascii_case("full") {
        Ok(Scale::Full)
    } else {
        Err(format!("unknown scale {v:?} (expected quick or full)"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => match parse_list(&args[1..]) {
            Ok(scale) => {
                list(scale);
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        Some("run") => match parse_run(&args[1..]) {
            Ok(opts) => run(&opts),
            Err(e) => fail(&e),
        },
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => fail(usage()),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn parse_list(args: &[String]) -> Result<Scale, String> {
    let mut scale = Scale::from_env();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = parse_scale(v)?;
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(scale)
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        filter: "*".to_string(),
        threads: sweep::default_threads(),
        scale: Scale::from_env(),
        seeds: None,
        out: "results.jsonl".to_string(),
        perf: None,
        baseline: "OPS".to_string(),
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--filter" => opts.filter = value("--filter")?.clone(),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1)
            }
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--seeds" => {
                opts.seeds = Some(
                    value("--seeds")?
                        .parse::<u32>()
                        .map_err(|e| format!("--seeds: {e}"))?
                        .max(1),
                )
            }
            "--out" => opts.out = value("--out")?.clone(),
            "--perf" => opts.perf = Some(value("--perf")?.clone()),
            "--baseline" => opts.baseline = value("--baseline")?.clone(),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn list(scale: Scale) {
    println!(
        "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>6}",
        "preset", "cells", "lbs", "wl", "fail", "fab", "seeds"
    );
    let mut total = 0usize;
    for m in presets::all(scale) {
        total += m.len();
        println!(
            "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>6}",
            m.name,
            m.len(),
            m.lbs.len(),
            m.workloads.len(),
            m.failures.len(),
            m.fabrics.len(),
            m.seeds.len(),
        );
    }
    println!("{total} cells total at {scale:?} scale");
}

fn run(opts: &RunOpts) -> ExitCode {
    let mut cells: Vec<Cell> = Vec::new();
    let mut matched = 0usize;
    for mut m in presets::all(opts.scale) {
        if !glob::matches(&opts.filter, &m.name) {
            continue;
        }
        matched += 1;
        if let Some(n) = opts.seeds {
            m = m.seeds(n);
        }
        cells.extend(m.expand());
    }
    if matched == 0 {
        return fail(&format!("no preset matches filter {:?}", opts.filter));
    }
    if !opts.quiet {
        eprintln!(
            "{} preset(s), {} cells, {} thread(s), {:?} scale",
            matched,
            cells.len(),
            opts.threads,
            opts.scale
        );
    }
    let start = std::time::Instant::now();
    let results = run_cells(&cells, opts.threads);
    let elapsed = start.elapsed();

    let write_result = if opts.out == "-" {
        write_jsonl(&mut std::io::stdout().lock(), &results)
    } else {
        std::fs::File::create(&opts.out).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            write_jsonl(&mut w, &results)?;
            w.flush()
        })
    };
    if let Err(e) = write_result {
        return fail(&format!("writing {}: {e}", opts.out));
    }
    if !opts.quiet && opts.out != "-" {
        eprintln!("wrote {} records to {}", results.len(), opts.out);
    }

    if let Some(perf_path) = &opts.perf {
        let written = std::fs::File::create(perf_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            sweep::write_perf_jsonl(&mut w, &results)?;
            w.flush()
        });
        if let Err(e) = written {
            return fail(&format!("writing {perf_path}: {e}"));
        }
        if !opts.quiet {
            eprintln!("wrote {} perf records to {perf_path}", results.len());
        }
    }

    if !opts.quiet {
        // Aggregates go to stderr when JSONL owns stdout.
        let tables = render_aggregates(&results, &opts.baseline);
        if opts.out == "-" {
            eprint!("{tables}");
        } else {
            print!("{tables}");
        }
        let incomplete = results.iter().filter(|r| !r.summary.completed).count();
        let (events, rate) = events_per_sec(&results);
        eprintln!(
            "{} cells in {:.1}s ({} hit the deadline); {:.1}M events at {:.2}M events/s/core",
            results.len(),
            elapsed.as_secs_f64(),
            incomplete,
            events as f64 / 1e6,
            rate / 1e6,
        );
    }
    ExitCode::SUCCESS
}
