//! `repsbench` — run the REPS scenario-sweep suite from the command line.
//!
//! ```text
//! repsbench list [--scale quick|full] [--spec-file PATH]... [--spec-only]
//!                [--lbs]
//! repsbench run [--filter GLOB] [--lb SPEC|GLOB] [--fault SPEC|GLOB]
//!               [--fidelity SPEC|GLOB] [--threads N]
//!               [--scale quick|full] [--seeds N] [--shard I/N] [--cache DIR]
//!               [--spec-file PATH]... [--spec-only] [--series DIR]
//!               [--trace DIR] [--diagnostics]
//!               [--out PATH] [--perf PATH] [--baseline LABEL] [--quiet]
//! repsbench merge OUT IN... [--baseline LABEL] [--quiet]
//! repsbench explain FILE
//! ```
//!
//! `list` prints every preset with its cell count (`--lbs` additionally
//! prints each preset's load-balancer axis as canonical LB-spec strings);
//! `run` expands the presets whose names match `--filter` (default `*`),
//! executes all cells on a work-stealing pool and writes one JSON Lines
//! record per cell to `--out` (default `results.jsonl`; `-` = stdout),
//! then prints cross-seed aggregate tables. Output is byte-identical for
//! any `--threads` value. `--scale` defaults to the `REPS_SCALE`
//! environment variable (`quick`).
//!
//! # Filtering by load balancer (`--lb`)
//!
//! `--lb` keeps only the cells whose load-balancer label matches the
//! given glob. Labels are canonical LB-spec strings (see the grammar
//! below), and a pattern that itself parses as a spec is canonicalized
//! first — `--lb 'REPS{freeze=off}'`, `--lb REPS-nofreeze` and
//! `--lb 'REPS{ freeze=off }'` all select the same cells, while
//! `--lb 'REPS*'` keeps every REPS configuration in the suite.
//!
//! # Filtering by fault (`--fault`)
//!
//! `--fault` is the same idea for the adversarial-fault axis: it keeps
//! only the cells whose fault label matches the glob, and a pattern that
//! itself parses as a fault spec (grammar below) is canonicalized first —
//! `--fault 'gray{p=0.01}'` and `--fault gray` select the same cells,
//! `--fault 'flap*'` keeps every flapping configuration, and
//! `--fault none` keeps only the healthy (default-axis) cells.
//!
//! ## The fault-spec grammar
//!
//! Fault axis values mirror the LB-spec grammar: a family name alone is
//! that fault's default configuration, `family{key=value,...}` overrides
//! knobs. Families (defaults in parentheses):
//!
//! * `none` — no injected fault (the default; never keyed).
//! * `gray{p,at,for,n}` — gray failure: each packet crossing the cable is
//!   silently dropped with probability `p` (0.01) from `at` (10us), on
//!   `n` (1) cables, healing after `for` (never).
//! * `corrupt{p,at,for,n}` — same shape, but the loss is payload
//!   corruption: the packet is counted and traced as corrupted, not as a
//!   silent gray drop.
//! * `flap{period,duty,at,n}` — the cable flaps: down for
//!   `(1-duty)*period`, up for `duty*period` (duty 0.5, period 100us),
//!   repeating from `at` until the cell deadline.
//! * `unidir{n,at,for}` — unidirectional blackhole: one direction of the
//!   cable silently drops everything, the reverse stays healthy.
//!
//! Probabilities have at most six decimal digits; durations are `25us` /
//! `10ms` / `500ns`. Cell keys carry the canonical spelling (defaults
//! omitted, fixed parameter order, `ms` rendered as `us`) under an
//! `ft=` component that is present only when the axis is non-default, so
//! healthy cells keep their pre-fault-axis keys, seeds and cache
//! addresses.
//!
//! # Filtering by fidelity (`--fidelity`)
//!
//! `--fidelity` filters on the fidelity axis the same way: `pkt` keeps
//! only full-packet cells (the ones whose keys lack a `fi=` component),
//! `hybrid` keeps the fluid-background cells, and any spelling is
//! canonicalized through the fidelity grammar first — `--fidelity
//! 'hybrid{bg=fluid}'` and `--fidelity hybrid` select the same cells.
//!
//! ## The fidelity grammar
//!
//! * `pkt` — everything packet-level (the default; never keyed).
//! * `hybrid` / `hybrid{bg=fluid}` — the cell's *background* workload
//!   runs on the fluid analytic rate model ([`netsim::fluid`]) instead of
//!   per-packet transport; background flows impose residual-capacity and
//!   queueing pressure on the packet-level foreground without costing a
//!   single background packet event. Keys carry `fi=hybrid` only for
//!   non-default cells, so `fidelity=pkt` keeps pre-axis keys, seeds and
//!   cache addresses.
//!
//! # User-defined grids (`--spec-file`)
//!
//! New scenarios are a text file, not a code change: each `--spec-file`
//! adds the scenario matrices of a line-oriented grid file (grammar in
//! [`sweep::specfile`]) to the preset pool — they list, filter, shard,
//! cache and sink exactly like built-ins. A name collision with a built-in
//! preset (or between spec files) is an error, never a silent preference.
//! A grid file holds any number of `[name]` sections; `axis = v1, v2`
//! lines widen that matrix's axes using the same stable labels cell keys
//! are built from, omitted axes keep their defaults, and `#` comments:
//!
//! ```text
//! # REPS vs. OPS as the fabric gets oversubscribed, healthy vs. degraded.
//! [oversub-grid]
//! fabric   = ls-8x8-o1, ls-8x8-o2, ls-8x8-o4
//! lb       = OPS, REPS
//! workload = perm-131072B
//! failure  = none, degraded10pct-200G
//! seed     = 0, 1
//!
//! # How fast must routing reconverge before spraying rides out a cut?
//! [reconv-grid]
//! lb       = OPS, REPS
//! workload = perm-262144B
//! failure  = cable1-at8us-perm
//! reconv   = none, 25us, 100us
//! ```
//!
//! ```text
//! repsbench run --spec-file examples/oversub.grid --filter '*-grid'
//! ```
//!
//! Axes: `fabric` (`2t-kK-oO`, `3t-kK-oO`, `ls-TxH-oO`,
//! `2t-custom-TxH-uU`), `lb` (LB-spec strings, below), `workload`
//! (`tornado-NB`, `perm-NB`, `incastDto1-NB`, `ringar-NB`, `bflyar-NB`,
//! `a2a-wW-NB`, `dctrace-Ppct-Tus`), `failure` (the cell-key failure
//! labels), `reconv` (`none` or a delay like `25us`), `track` (which
//! ToR's uplinks `--series` records), `fault` (fault-spec strings,
//! above), `fidelity` (`pkt` / `hybrid`, above), `seed`, `cc`,
//! `coalesce`, and the single-valued `sim`, `background`
//! (`workload+LB`), `deadline`. Parse errors name their line number.
//!
//! With `--spec-only` the built-in presets stay out of the pool entirely:
//! the run is exactly the grids given, and a grid may then deliberately
//! reuse a built-in preset name to reproduce its cells
//! (`examples/ablation.grid` does this for the ablation presets).
//!
//! ## The LB-spec grammar
//!
//! `lb` axis values are typed spec strings: a family name is that
//! scheme's paper-default configuration, `Family{key=value,...}`
//! overrides individual knobs, so a parameter ablation — the paper's
//! EVS-size sensitivity sweep, a flowlet-gap scan — is a text edit:
//!
//! ```text
//! [evs-sweep]
//! lb       = OPS{evs=64}, OPS, REPS{evs=64}, REPS
//! workload = tornado-262144B
//! ```
//!
//! Families and parameters (defaults in parentheses): `ECMP`, `MPRDMA`
//! and `Adaptive RoCE` (none); `OPS{evs}` (65536);
//! `REPS{evs,buf,freeze,fto,freezeat}` (65536, 8, `on`, `100us`, unset);
//! `PLB{evs,thresh,rounds}` (65536, 0.05, 1); `Flowlet{gap}` (half the
//! paper RTT); `BitMap{evs,clear}` (65536, twice the paper RTT);
//! `MPTCP{subflows}` (8). Durations are `25us` / `500ns` / `77ps`.
//! Cell keys always carry the canonical spelling (defaults omitted,
//! fixed parameter order; the legacy `REPS-nofreeze` and
//! `REPS+freeze@Nus` spellings remain canonical for their
//! configurations), so every spelling of one configuration shares one
//! derived seed, one shard and one cache address.
//!
//! # Per-cell time series (`--series DIR`)
//!
//! `--series DIR` additionally streams every executed cell's
//! link-utilization buckets and queue-occupancy samples (the uplinks of
//! the cell's `track` ToR — ToR 0, the micro figures' vantage point,
//! unless the grid's `track` axis says otherwise) into
//! `DIR/<derived_seed hex>.series.jsonl`. Line 1 is a header, then one
//! record per tracked link:
//!
//! ```text
//! {"key":...,"derived_seed":N,"bucket_width_ps":N,"sample_period_ps":N,"links":N}
//! {"link":N,"bucket_bytes":[...],"queue_samples":[[at_ps,bytes],...]}
//! ```
//!
//! Series documents are pure functions of cell keys — identical across
//! `--threads` values and shard splits (shards may share one directory or
//! be unioned later) — and fully separate from the byte-stable result
//! stream, which is unchanged by the flag. With `--cache`, a cached cell
//! only skips execution when its series document already exists; pointing
//! a warm cache at an empty series directory re-runs the cells. See
//! [`sweep::series`] for the full schema.
//!
//! # Observability: traces, explain, diagnostics, progress
//!
//! Three opt-in layers explain *why* a cell scored the way it did; all of
//! them are off by default and cost nothing when off.
//!
//! **Flight-recorder traces (`--trace DIR`).** Every executed cell
//! additionally writes `DIR/<derived_seed hex>.trace.jsonl`: a header,
//! then one typed event per line in simulation order — per-hop path
//! choices (`path_choice`), every load-balancer entropy decision with its
//! provenance (`ev_choice` with `decision` = `fresh` / `recycled` /
//! `frozen`), receiver reorder depths (`reorder`), retransmits and RTO
//! sweeps (`retransmit`, `timeout`), balancer freeze / thaw transitions,
//! and link / switch failure and recovery events. Like series documents,
//! traces are pure functions of cell keys: byte-identical across
//! `--threads` values and shard splits, written atomically into one
//! shared (or later-merged) directory, and gating `--cache` hits so a
//! warm cache never leaves a requested trace unwritten. See
//! [`sweep::trace`] for the schema.
//!
//! **`repsbench explain FILE`** renders one trace document into a
//! human-readable report: EV reuse rate (recycled + frozen replays as a
//! share of all choices), path-change counts, the reorder-depth
//! histogram, and the failure-reaction timeline (link_down → timeout →
//! freeze → retransmit → thaw, with timestamps).
//!
//! **Decision diagnostics (`--diagnostics`).** Adds a `diagnostics`
//! object to every result record with per-LB decision counters summed
//! across connections — REPS' fresh / recycled / frozen draw counts and
//! freeze / thaw transitions, flowlet switches, PLB repaths, bitmap
//! congestion rejections, MPTCP subflow counts. Unlike `--series` and
//! `--trace` this *changes the result JSONL bytes* (that is why it is a
//! separate flag); records without the flag are byte-identical to
//! pre-diagnostics builds. `repsbench merge` averages diagnostics
//! fieldwise across seeds like every other summary field, and cache
//! entries only hit when their diagnostics presence matches the request.
//!
//! **Progress.** While a sweep runs, a single stderr line tracks cells
//! done / total, executed vs. cache hits, aggregate events/s and an ETA.
//! It appears only when stderr is a terminal (never in CI logs or
//! redirected output) and `--quiet` suppresses it like all other chatter.
//!
//! # Sharded (fleet) sweeps
//!
//! `--shard I/N` keeps only the cells whose key hash lands in shard `I` of
//! `N` (1-based) — a pure function of each cell key, so filters never skew
//! the partition and every cell lands in exactly one shard. `merge` unions
//! shard files, rejects duplicate keys, re-sorts by key and re-renders the
//! aggregate tables; the merged JSONL is byte-identical to an unsharded
//! run. Splitting the full suite across two boxes:
//!
//! ```text
//! boxA$ repsbench run --scale full --shard 1/2 --out shard1.jsonl
//! boxB$ repsbench run --scale full --shard 2/2 --out shard2.jsonl
//!       # copy shard2.jsonl to boxA, then:
//! boxA$ repsbench merge full.jsonl shard1.jsonl shard2.jsonl
//! ```
//!
//! # Incremental sweeps
//!
//! `--cache DIR` reuses per-cell results recorded by an earlier run of the
//! *same build* (entries are namespaced by a compiled-in `git describe`
//! fingerprint, addressed by derived seed, and validated against the full
//! cell key). Hits are byte-identical to fresh runs; the footer reports
//! hit/miss counts, and a fully warm re-run executes nothing.
//!
//! `--perf` additionally writes one JSONL record per *executed* cell with
//! its event count, wall time and events/sec (a *separate* file because
//! wall time is nondeterministic and `--out` is byte-stable; cache hits
//! have no fresh perf counters, so they are omitted); the run footer
//! reports aggregate simulator events/sec over the executed cells.

use std::io::Write;
use std::process::ExitCode;

use harness::Scale;
use sweep::matrix::Cell;
use sweep::{
    events_per_sec, explain_doc, glob, merge_files, presets, render_aggregates,
    run_cells_instrumented, specfile, CellCache, Progress, RunSinks, ScenarioMatrix, SeriesSink,
    Shard, TraceStore,
};

#[derive(Debug)]
struct RunOpts {
    filter: String,
    lb_filter: Option<String>,
    fault_filter: Option<String>,
    fidelity_filter: Option<String>,
    threads: usize,
    scale: Scale,
    seeds: Option<u32>,
    shard: Option<Shard>,
    cache: Option<String>,
    spec_files: Vec<String>,
    spec_only: bool,
    series: Option<String>,
    trace: Option<String>,
    diagnostics: bool,
    out: String,
    perf: Option<String>,
    baseline: String,
    quiet: bool,
}

#[derive(Debug)]
struct ListOpts {
    scale: Scale,
    spec_files: Vec<String>,
    spec_only: bool,
    lbs: bool,
}

/// The run's matrix pool: every built-in preset at `scale` plus the
/// matrices of each `--spec-file`, rejecting name collisions (a spec file
/// shadowing a built-in would otherwise silently lose to it). With
/// `spec_only`, the built-ins stay out of the pool — a pure user-defined
/// suite, where grid names may deliberately coincide with built-in preset
/// names (e.g. `examples/ablation.grid` reproducing `evs-sensitivity`).
fn matrix_pool(
    scale: Scale,
    spec_files: &[String],
    spec_only: bool,
) -> Result<Vec<ScenarioMatrix>, String> {
    if spec_only && spec_files.is_empty() {
        return Err("--spec-only needs at least one --spec-file".to_string());
    }
    let mut pool = if spec_only {
        Vec::new()
    } else {
        presets::all(scale)
    };
    for path in spec_files {
        pool.extend(specfile::parse_file(path)?);
    }
    presets::ensure_unique_names(&pool)?;
    Ok(pool)
}

/// Canonicalizes a `--lb` filter: a pattern that parses as an LB spec is
/// replaced by its canonical rendering, so `--lb 'REPS{freeze=off}'` and
/// `--lb REPS-nofreeze` select the same cells; glob patterns (`*`/`?`
/// metacharacters, e.g. `REPS*`) are matched as written against the
/// canonical labels. A glob-free pattern with `{...}` parameters or an
/// `@` freeze instant can only be a spec (no canonical label contains
/// those characters otherwise), so its parse error is surfaced instead of
/// silently becoming a never-matching glob.
fn canonical_lb_filter(pattern: &str) -> Result<String, String> {
    match baselines::kind::LbKind::parse(pattern) {
        Ok(kind) => Ok(kind.spec()),
        Err(e) => {
            let globby = pattern.contains('*') || pattern.contains('?');
            if !globby && (pattern.contains('{') || pattern.contains('@')) {
                Err(format!("--lb: {e}"))
            } else {
                Ok(pattern.to_string())
            }
        }
    }
}

/// Canonicalizes a `--fidelity` filter: any spelling of a fidelity
/// (`hybrid{bg=fluid}`) is replaced by its canonical label (`hybrid`),
/// matching the `fi=` key component cells actually carry; glob patterns
/// pass through. A glob-free braced pattern can only be a spec, so its
/// parse error surfaces instead of silently matching nothing.
fn canonical_fidelity_filter(pattern: &str) -> Result<String, String> {
    match sweep::fidelity::FidelitySpec::parse(pattern) {
        Ok(spec) => Ok(spec.label().to_string()),
        Err(e) => {
            let globby = pattern.contains('*') || pattern.contains('?');
            if !globby && pattern.contains('{') {
                Err(format!("--fidelity: {e}"))
            } else {
                Ok(pattern.to_string())
            }
        }
    }
}

/// Canonicalizes a `--fault` filter the same way: any spelling of a fault
/// configuration (`gray{p=0.01}`, `flap{period=10ms}`) is replaced by its
/// canonical label (`gray`, `flap{period=10000us}`), so it matches the
/// `ft=` key component cells actually carry; glob patterns pass through.
/// As with `--lb`, a glob-free braced pattern can only be a spec, so its
/// parse error surfaces instead of silently matching nothing.
fn canonical_fault_filter(pattern: &str) -> Result<String, String> {
    match sweep::FaultSpec::parse(pattern) {
        Ok(spec) => Ok(spec.label()),
        Err(e) => {
            let globby = pattern.contains('*') || pattern.contains('?');
            if !globby && pattern.contains('{') {
                Err(format!("--fault: {e}"))
            } else {
                Ok(pattern.to_string())
            }
        }
    }
}

#[derive(Debug)]
struct MergeOpts {
    out: String,
    inputs: Vec<String>,
    baseline: String,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage:\n  repsbench list [--scale quick|full] [--spec-file PATH]... [--spec-only]\n                 [--lbs]\n  repsbench run [--filter GLOB] [--lb SPEC|GLOB] [--fault SPEC|GLOB]\n                [--fidelity SPEC|GLOB] [--threads N]\n                [--scale quick|full] [--seeds N] [--shard I/N] [--cache DIR]\n                [--spec-file PATH]... [--spec-only] [--series DIR]\n                [--trace DIR] [--diagnostics]\n                [--out PATH|-] [--perf PATH] [--baseline LABEL] [--quiet]\n  repsbench merge OUT IN... [--baseline LABEL] [--quiet]\n  repsbench explain FILE"
}

fn parse_scale(v: &str) -> Result<Scale, String> {
    if v.eq_ignore_ascii_case("quick") {
        Ok(Scale::Quick)
    } else if v.eq_ignore_ascii_case("full") {
        Ok(Scale::Full)
    } else {
        Err(format!("unknown scale {v:?} (expected quick or full)"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => match parse_list(&args[1..]) {
            Ok(opts) => list(&opts),
            Err(e) => fail(&e),
        },
        Some("run") => match parse_run(&args[1..]) {
            Ok(opts) => run(&opts),
            Err(e) => fail(&e),
        },
        Some("merge") => match parse_merge(&args[1..]) {
            Ok(opts) => merge(&opts),
            Err(e) => fail(&e),
        },
        Some("explain") => match args[1..] {
            [ref path] => explain(path),
            _ => fail(&format!("explain takes exactly one FILE\n{}", usage())),
        },
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => fail(usage()),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn parse_list(args: &[String]) -> Result<ListOpts, String> {
    let mut opts = ListOpts {
        scale: Scale::from_env(),
        spec_files: Vec::new(),
        spec_only: false,
        lbs: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = parse_scale(v)?;
            }
            "--spec-file" => {
                let v = it.next().ok_or("--spec-file needs a value")?;
                opts.spec_files.push(v.clone());
            }
            "--spec-only" => opts.spec_only = true,
            "--lbs" => opts.lbs = true,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        filter: "*".to_string(),
        lb_filter: None,
        fault_filter: None,
        fidelity_filter: None,
        threads: sweep::default_threads(),
        scale: Scale::from_env(),
        seeds: None,
        shard: None,
        cache: None,
        spec_files: Vec::new(),
        spec_only: false,
        series: None,
        trace: None,
        diagnostics: false,
        out: "results.jsonl".to_string(),
        perf: None,
        baseline: "OPS".to_string(),
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--filter" => opts.filter = value("--filter")?.clone(),
            "--lb" => opts.lb_filter = Some(canonical_lb_filter(value("--lb")?)?),
            "--fault" => opts.fault_filter = Some(canonical_fault_filter(value("--fault")?)?),
            "--fidelity" => {
                opts.fidelity_filter = Some(canonical_fidelity_filter(value("--fidelity")?)?)
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--seeds" => {
                let n = value("--seeds")?
                    .parse::<u32>()
                    .map_err(|e| format!("--seeds: {e}"))?;
                if n == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
                opts.seeds = Some(n);
            }
            "--shard" => opts.shard = Some(Shard::parse(value("--shard")?)?),
            "--cache" => opts.cache = Some(value("--cache")?.clone()),
            "--spec-file" => opts.spec_files.push(value("--spec-file")?.clone()),
            "--spec-only" => opts.spec_only = true,
            "--series" => opts.series = Some(value("--series")?.clone()),
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            "--diagnostics" => opts.diagnostics = true,
            "--out" => opts.out = value("--out")?.clone(),
            "--perf" => opts.perf = Some(value("--perf")?.clone()),
            "--baseline" => opts.baseline = value("--baseline")?.clone(),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn parse_merge(args: &[String]) -> Result<MergeOpts, String> {
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut baseline = "OPS".to_string();
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = it.next().ok_or("--baseline needs a value")?.clone();
            }
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?}\n{}", usage()));
            }
            path => {
                if out.is_none() {
                    out = Some(path.to_string());
                } else {
                    inputs.push(path.to_string());
                }
            }
        }
    }
    let out = out.ok_or_else(|| format!("merge needs an output path\n{}", usage()))?;
    if inputs.is_empty() {
        return Err(format!("merge needs at least one input shard\n{}", usage()));
    }
    if inputs.contains(&out) {
        return Err(format!("merge output {out:?} is also an input"));
    }
    Ok(MergeOpts {
        out,
        inputs,
        baseline,
        quiet,
    })
}

fn list(opts: &ListOpts) -> ExitCode {
    let pool = match matrix_pool(opts.scale, &opts.spec_files, opts.spec_only) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    println!(
        "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>6}",
        "preset", "cells", "lbs", "wl", "fail", "fab", "rc", "ft", "fi", "seeds"
    );
    let mut total = 0usize;
    for m in pool {
        total += m.len();
        println!(
            "{:<28} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>6}",
            m.name,
            m.len(),
            m.lbs.len(),
            m.workloads.len(),
            m.failures.len(),
            m.fabrics.len(),
            m.reconv.len(),
            m.faults.len(),
            m.fidelities.len(),
            m.seeds.len(),
        );
        if opts.lbs {
            // One canonical LB-spec string per axis value: what `--lb`
            // filters and spec-file `lb =` lines match on.
            for lb in &m.lbs {
                println!("{:<28}   lb = {}", "", lb.label);
            }
        }
    }
    println!("{total} cells total at {:?} scale", opts.scale);
    ExitCode::SUCCESS
}

/// Writes `text` to `path`, with `-` meaning stdout.
fn write_output(path: &str, text: &str) -> std::io::Result<()> {
    if path == "-" {
        let mut out = std::io::stdout().lock();
        out.write_all(text.as_bytes())?;
        out.flush()
    } else {
        std::fs::write(path, text)
    }
}

fn run(opts: &RunOpts) -> ExitCode {
    let pool = match matrix_pool(opts.scale, &opts.spec_files, opts.spec_only) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut cells: Vec<Cell> = Vec::new();
    let mut matched = 0usize;
    for mut m in pool {
        if !glob::matches(&opts.filter, &m.name) {
            continue;
        }
        matched += 1;
        if let Some(n) = opts.seeds {
            m = m.seeds(n);
        }
        cells.extend(m.expand());
    }
    if matched == 0 {
        return fail(&format!("no preset matches filter {:?}", opts.filter));
    }
    if let Some(lb) = &opts.lb_filter {
        // Cell-level filter over canonical LB-spec labels; glob syntax, so
        // `--lb 'REPS*'` keeps the whole REPS family and `--lb OPS{evs=64}`
        // (any spelling — the pattern was canonicalized at parse time)
        // keeps one configuration.
        cells.retain(|c| glob::matches(lb, &c.lb.label));
        if cells.is_empty() {
            return fail(&format!("no cell matches lb filter {lb:?}"));
        }
    }
    if let Some(ft) = &opts.fault_filter {
        // Same cell-level filter over canonical fault labels; default
        // (healthy) cells carry the label `none`, so `--fault none`
        // selects exactly the cells whose keys lack an `ft=` component.
        cells.retain(|c| glob::matches(ft, &c.fault.label()));
        if cells.is_empty() {
            return fail(&format!("no cell matches fault filter {ft:?}"));
        }
    }
    if let Some(fi) = &opts.fidelity_filter {
        // Same again for the fidelity axis; default cells carry the
        // label `pkt`, so `--fidelity pkt` selects exactly the cells
        // whose keys lack a `fi=` component.
        cells.retain(|c| glob::matches(fi, c.fidelity.label()));
        if cells.is_empty() {
            return fail(&format!("no cell matches fidelity filter {fi:?}"));
        }
    }
    let total = cells.len();
    if let Some(shard) = opts.shard {
        cells = shard.select(cells);
    }
    let cache = match &opts.cache {
        None => None,
        Some(dir) => match CellCache::open_versioned(dir) {
            Ok(c) => Some(c),
            Err(e) => return fail(&format!("opening cache {dir}: {e}")),
        },
    };
    let series = match &opts.series {
        None => None,
        Some(dir) => match SeriesSink::create(dir) {
            Ok(s) => Some(s),
            Err(e) => return fail(&format!("opening series directory {dir}: {e}")),
        },
    };
    let trace = match &opts.trace {
        None => None,
        Some(dir) => match TraceStore::create(dir) {
            Ok(t) => Some(t),
            Err(e) => return fail(&format!("opening trace directory {dir}: {e}")),
        },
    };
    if !opts.quiet {
        let sharding = match opts.shard {
            Some(s) => format!(" (shard {s} of {total} cells)"),
            None => String::new(),
        };
        eprintln!(
            "{} preset(s), {} cells{}, {} thread(s), {:?} scale",
            matched,
            cells.len(),
            sharding,
            opts.threads,
            opts.scale
        );
    }
    // Live progress on stderr (TTY-gated; --quiet keeps it off entirely).
    let progress = if opts.quiet {
        Progress::with_active(cells.len(), false)
    } else {
        Progress::stderr(cells.len())
    };
    // detlint: allow(DET002) — elapsed-time footer on stderr; never reaches result bytes
    let start = std::time::Instant::now();
    let outcome = run_cells_instrumented(
        &cells,
        opts.threads,
        RunSinks {
            cache: cache.as_ref(),
            series: series.as_ref(),
            trace: trace.as_ref(),
            diagnostics: opts.diagnostics,
            progress: Some(&progress),
        },
    );
    progress.finish();
    let elapsed = start.elapsed();
    let results = &outcome.results;
    if outcome.store_errors > 0 {
        // Best-effort: a full disk must not cost the sweep its results.
        eprintln!(
            "warning: failed to store {} result(s) in cache {}",
            outcome.store_errors,
            opts.cache.as_deref().unwrap_or("")
        );
    }
    if outcome.series_errors > 0 {
        eprintln!(
            "warning: failed to write {} series document(s) in {}",
            outcome.series_errors,
            opts.series.as_deref().unwrap_or("")
        );
    }
    if outcome.trace_errors > 0 {
        eprintln!(
            "warning: failed to write {} trace document(s) in {}",
            outcome.trace_errors,
            opts.trace.as_deref().unwrap_or("")
        );
    }
    if let (Some(dir), false) = (&opts.series, opts.quiet) {
        eprintln!(
            "wrote {} series document(s) to {dir}",
            outcome.executed.len() - outcome.series_errors
        );
    }
    if let (Some(dir), false) = (&opts.trace, opts.quiet) {
        eprintln!(
            "wrote {} trace document(s) to {dir}",
            outcome.executed.len() - outcome.trace_errors
        );
    }

    if let Err(e) = write_output(&opts.out, &sweep::to_jsonl(results)) {
        return fail(&format!("writing {}: {e}", opts.out));
    }
    if !opts.quiet && opts.out != "-" {
        eprintln!("wrote {} records to {}", results.len(), opts.out);
    }

    if let Some(perf_path) = &opts.perf {
        let written = std::fs::File::create(perf_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            for r in outcome.executed_results() {
                writeln!(w, "{}", sweep::perf_record(r))?;
            }
            w.flush()
        });
        if let Err(e) = written {
            return fail(&format!("writing {perf_path}: {e}"));
        }
        if !opts.quiet {
            eprintln!(
                "wrote {} perf records to {perf_path}",
                outcome.executed.len()
            );
        }
    }

    if !opts.quiet {
        // Aggregates go to stderr when JSONL owns stdout.
        let tables = render_aggregates(results, &opts.baseline);
        if opts.out == "-" {
            eprint!("{tables}");
        } else {
            print!("{tables}");
        }
        let incomplete = results.iter().filter(|r| !r.summary.completed).count();
        let (events, rate) = events_per_sec(outcome.executed_results());
        let caching = match opts.cache {
            Some(_) => format!(" ({} cached, {} executed)", outcome.hits, outcome.misses),
            None => String::new(),
        };
        eprintln!(
            "{} cells{} in {:.1}s ({} hit the deadline); {:.1}M events at {:.2}M events/s/core",
            results.len(),
            caching,
            elapsed.as_secs_f64(),
            incomplete,
            events as f64 / 1e6,
            rate / 1e6,
        );
    }
    ExitCode::SUCCESS
}

fn explain(path: &str) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => return fail(&format!("reading {path}: {e}")),
    };
    match explain_doc(&doc) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn merge(opts: &MergeOpts) -> ExitCode {
    let merged = match merge_files(&opts.inputs) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    if let Err(e) = write_output(&opts.out, &merged.to_jsonl()) {
        return fail(&format!("writing {}: {e}", opts.out));
    }
    if !opts.quiet {
        if opts.out != "-" {
            eprintln!(
                "merged {} records from {} shard(s) into {}",
                merged.results.len(),
                opts.inputs.len(),
                opts.out
            );
        }
        let tables = render_aggregates(&merged.results, &opts.baseline);
        if opts.out == "-" {
            eprint!("{tables}");
        } else {
            print!("{tables}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_defaults_are_sensible() {
        let o = parse_run(&[]).expect("no args is valid");
        assert_eq!(o.filter, "*");
        assert_eq!(o.lb_filter, None);
        assert_eq!(o.fault_filter, None);
        assert_eq!(o.fidelity_filter, None);
        assert!(o.threads >= 1);
        assert_eq!(o.seeds, None);
        assert_eq!(o.shard, None);
        assert_eq!(o.cache, None);
        assert!(o.spec_files.is_empty());
        assert!(!o.spec_only);
        assert_eq!(o.series, None);
        assert_eq!(o.trace, None);
        assert!(!o.diagnostics);
        assert_eq!(o.out, "results.jsonl");
        assert_eq!(o.perf, None);
        assert_eq!(o.baseline, "OPS");
        assert!(!o.quiet);
    }

    #[test]
    fn run_parses_every_flag() {
        let o = parse_run(&sv(&[
            "--filter",
            "fig0*",
            "--lb",
            "REPS*",
            "--fault",
            "gray*",
            "--fidelity",
            "hybrid{bg=fluid}",
            "--spec-only",
            "--threads",
            "8",
            "--scale",
            "full",
            "--seeds",
            "5",
            "--shard",
            "2/4",
            "--cache",
            "/tmp/c",
            "--spec-file",
            "a.grid",
            "--spec-file",
            "b.grid",
            "--series",
            "series-out",
            "--trace",
            "trace-out",
            "--diagnostics",
            "--out",
            "-",
            "--perf",
            "p.jsonl",
            "--baseline",
            "REPS",
            "--quiet",
        ]))
        .expect("all flags valid");
        assert_eq!(o.filter, "fig0*");
        assert_eq!(o.lb_filter.as_deref(), Some("REPS*"));
        assert_eq!(o.fault_filter.as_deref(), Some("gray*"));
        // Canonicalized at parse time: the default bg model collapses.
        assert_eq!(o.fidelity_filter.as_deref(), Some("hybrid"));
        assert!(o.spec_only);
        assert_eq!(o.threads, 8);
        assert!(matches!(o.scale, Scale::Full));
        assert_eq!(o.seeds, Some(5));
        assert_eq!(o.shard, Some(Shard { index: 2, count: 4 }));
        assert_eq!(o.cache.as_deref(), Some("/tmp/c"));
        assert_eq!(o.spec_files, vec!["a.grid", "b.grid"]);
        assert_eq!(o.series.as_deref(), Some("series-out"));
        assert_eq!(o.trace.as_deref(), Some("trace-out"));
        assert!(o.diagnostics);
        assert_eq!(o.out, "-");
        assert_eq!(o.perf.as_deref(), Some("p.jsonl"));
        assert_eq!(o.baseline, "REPS");
        assert!(o.quiet);
    }

    #[test]
    fn zero_threads_and_zero_seeds_are_rejected_not_clamped() {
        let err = parse_run(&sv(&["--threads", "0"])).expect_err("0 threads");
        assert!(err.contains("--threads"), "{err}");
        let err = parse_run(&sv(&["--seeds", "0"])).expect_err("0 seeds");
        assert!(err.contains("--seeds"), "{err}");
    }

    #[test]
    fn malformed_run_arguments_are_rejected() {
        for bad in [
            sv(&["--threads"]),
            sv(&["--threads", "x"]),
            sv(&["--threads", "-2"]),
            sv(&["--seeds", "1.5"]),
            sv(&["--scale", "medium"]),
            sv(&["--shard", "0/2"]),
            sv(&["--shard", "3/2"]),
            sv(&["--shard", "2"]),
            sv(&["--cache"]),
            sv(&["--trace"]),
            sv(&["--bogus"]),
            sv(&["extra"]),
        ] {
            assert!(parse_run(&bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn list_parser_accepts_scale_and_spec_files() {
        assert!(parse_list(&[]).is_ok());
        assert!(matches!(
            parse_list(&sv(&["--scale", "full"])),
            Ok(ListOpts {
                scale: Scale::Full,
                ..
            })
        ));
        let o = parse_list(&sv(&["--spec-file", "g.grid", "--spec-only", "--lbs"]))
            .expect("spec file accepted");
        assert_eq!(o.spec_files, vec!["g.grid"]);
        assert!(o.spec_only);
        assert!(o.lbs);
        assert!(parse_list(&sv(&["--scale", "nope"])).is_err());
        assert!(parse_list(&sv(&["--filter", "x"])).is_err());
        assert!(parse_list(&sv(&["--spec-file"])).is_err());
    }

    #[test]
    fn matrix_pool_rejects_spec_shadowing_a_builtin() {
        let dir = std::env::temp_dir().join(format!("repsbench-shadow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shadow.grid");
        std::fs::write(&path, "[fig02-tornado-micro]\nlb = OPS\n").unwrap();
        let path_arg = [path.to_string_lossy().into_owned()];
        let err = matrix_pool(Scale::Quick, &path_arg, false)
            .expect_err("shadowing a built-in preset must fail");
        assert!(err.contains("fig02-tornado-micro"), "{err}");
        // With --spec-only the same grid is the whole pool: deliberately
        // reusing a built-in name (to reproduce its cells) is fine.
        let pool = matrix_pool(Scale::Quick, &path_arg, true).expect("spec-only pool");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].name, "fig02-tornado-micro");
        // A non-colliding grid joins the full pool.
        std::fs::write(&path, "[my-grid]\nlb = OPS\n").unwrap();
        let pool = matrix_pool(Scale::Quick, &path_arg, false).expect("fresh name joins the pool");
        assert!(pool.iter().any(|m| m.name == "my-grid"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_only_without_spec_files_is_rejected() {
        let err = matrix_pool(Scale::Quick, &[], true).expect_err("no grids to run");
        assert!(err.contains("--spec-only"), "{err}");
    }

    #[test]
    fn lb_filters_canonicalize_any_spec_spelling() {
        let ok = |p: &str| canonical_lb_filter(p).expect(p);
        // Any spelling of a configuration selects its canonical label.
        assert_eq!(ok("REPS{freeze=off}"), "REPS-nofreeze");
        assert_eq!(ok("OPS{evs=65536}"), "OPS");
        assert_eq!(ok("OPS{evs=64}"), "OPS{evs=64}");
        // Globs and non-spec patterns pass through untouched.
        assert_eq!(ok("REPS*"), "REPS*");
        assert_eq!(ok("*{evs=64}"), "*{evs=64}");
        // A glob-free braced pattern is a spec; its parse error surfaces
        // rather than degrading to a never-matching glob.
        let err = canonical_lb_filter("OPS{evs=0}").expect_err("malformed spec");
        assert!(err.contains("out of range"), "{err}");
        let err = canonical_lb_filter("OPS{evs=abc}").expect_err("malformed spec");
        assert!(err.contains("bad evs"), "{err}");
        let err = canonical_lb_filter("REPS+freeze@50").expect_err("missing unit suffix");
        assert!(err.contains("bad duration"), "{err}");
        assert!(parse_run(&sv(&["--lb", "OPS{evs=0}"])).is_err());
    }

    #[test]
    fn fault_filters_canonicalize_any_spec_spelling() {
        let ok = |p: &str| canonical_fault_filter(p).expect(p);
        // Any spelling of a configuration selects its canonical label —
        // the exact string cells carry in their `ft=` key component.
        assert_eq!(ok("gray{p=0.01}"), "gray");
        assert_eq!(ok("gray{p=0.05,n=2}"), "gray{p=0.05,n=2}");
        assert_eq!(ok("flap{period=10ms}"), "flap{period=10000us}");
        assert_eq!(ok("none"), "none");
        // Globs and non-spec patterns pass through untouched.
        assert_eq!(ok("flap*"), "flap*");
        assert_eq!(ok("*{n=2}"), "*{n=2}");
        // A glob-free braced pattern is a spec; its parse error surfaces
        // rather than degrading to a never-matching glob.
        let err = canonical_fault_filter("gray{p=2}").expect_err("p out of range");
        assert!(err.contains("out of range"), "{err}");
        let err = canonical_fault_filter("gray{q=1}").expect_err("unknown key");
        assert!(err.contains("unknown"), "{err}");
        assert!(parse_run(&sv(&["--fault", "gray{p=2}"])).is_err());
        assert!(parse_run(&sv(&["--fault"])).is_err());
    }

    #[test]
    fn fidelity_filters_canonicalize_any_spec_spelling() {
        let ok = |p: &str| canonical_fidelity_filter(p).expect(p);
        // Any spelling of a configuration selects its canonical label —
        // the exact string cells carry in their `fi=` key component.
        assert_eq!(ok("hybrid{bg=fluid}"), "hybrid");
        assert_eq!(ok("hybrid"), "hybrid");
        assert_eq!(ok("pkt"), "pkt");
        // Globs and non-spec patterns pass through untouched.
        assert_eq!(ok("hyb*"), "hyb*");
        // A glob-free braced pattern is a spec; its parse error surfaces
        // rather than degrading to a never-matching glob.
        let err = canonical_fidelity_filter("hybrid{bg=packet}").expect_err("bad bg model");
        assert!(err.contains("unknown background model"), "{err}");
        assert!(parse_run(&sv(&["--fidelity", "hybrid{bg=packet}"])).is_err());
        assert!(parse_run(&sv(&["--fidelity"])).is_err());
    }

    #[test]
    fn merge_parser_wants_out_then_inputs() {
        let o = parse_merge(&sv(&[
            "full.jsonl",
            "a.jsonl",
            "b.jsonl",
            "--baseline",
            "REPS",
            "--quiet",
        ]))
        .expect("valid merge");
        assert_eq!(o.out, "full.jsonl");
        assert_eq!(o.inputs, vec!["a.jsonl", "b.jsonl"]);
        assert_eq!(o.baseline, "REPS");
        assert!(o.quiet);

        assert!(parse_merge(&[]).is_err(), "no output");
        assert!(parse_merge(&sv(&["out.jsonl"])).is_err(), "no inputs");
        assert!(
            parse_merge(&sv(&["x.jsonl", "x.jsonl"])).is_err(),
            "output aliases an input"
        );
        assert!(parse_merge(&sv(&["out.jsonl", "a.jsonl", "--bogus"])).is_err());
    }

    #[test]
    fn scale_parses_case_insensitively() {
        assert!(matches!(parse_scale("QUICK"), Ok(Scale::Quick)));
        assert!(matches!(parse_scale("Full"), Ok(Scale::Full)));
        assert!(parse_scale("huge").is_err());
    }
}
