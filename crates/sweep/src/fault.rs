//! The adversarial-fault axis: a typed grammar for gray failures,
//! payload corruption, link flapping and unidirectional blackholes.
//!
//! [`FaultSpec`] is to the `fault=` grid axis what
//! [`LbKind::parse`](baselines::kind::LbKind) is to the `lb =` axis: a
//! parse/render pair with one canonical string per configuration, so any
//! spelling of the same fault shares one cell key, one derived seed and
//! one cache address. The grammar:
//!
//! ```text
//! none                                   healthy fabric (the default)
//! gray                                   all defaults (p=0.01 on 1 cable)
//! gray{p=0.01,at=10us,for=100us,n=2}     silent loss, onset + heal
//! corrupt{p=0.001}                       payload corruption (distinct
//!                                        DropReason from gray loss)
//! flap{period=100us,duty=0.5,at=10us}    periodic down/up; duty is the
//!                                        up fraction of each period
//! unidir{n=1,at=10us,for=200us}          one direction of n cables
//! ```
//!
//! Probabilities and duty cycles are stored as integer parts-per-million
//! and rendered as plain decimals (`0.01` == 10 000 ppm), so
//! `parse(render(spec)) == spec` is exact — no float formatting reaches a
//! cell key. Durations use [`Time::label`]/[`Time::parse_label`]
//! (`10ms` is accepted as input and canonicalizes to `10000us`).
//! Canonical rendering omits parameters at their defaults; a bare family
//! name means "all defaults".
//!
//! [`FaultSpec::build`] materializes the plan against the cell's fabric
//! with a cell-derived [`Rng64`] choosing the affected cables, so a cell
//! is byte-deterministic and cacheable like every other axis value. Flap
//! schedules are expanded into a bounded control-event list truncated at
//! the cell's horizon (its deadline) — calendar growth is
//! `O(horizon / period)`, never unbounded.

use netsim::failures::{Failure, FailurePlan};
use netsim::ids::LinkId;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};

/// Default onset instant for every fault family.
const DEFAULT_AT: Time = Time::from_us(10);
/// Default per-packet probability for `gray`/`corrupt` (0.01).
const DEFAULT_P_PPM: u32 = 10_000;
/// Default flap period.
const DEFAULT_PERIOD: Time = Time::from_us(100);
/// Default flap duty cycle (0.5 = up half of each period).
const DEFAULT_DUTY_PPM: u32 = 500_000;
/// Default number of affected cables.
const DEFAULT_N: u32 = 1;
/// One whole, in parts-per-million.
const PPM: u32 = 1_000_000;

/// A fault-plan description, materialized per cell against the topology.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FaultSpec {
    /// Healthy fabric: no fault machinery touches the run at all.
    #[default]
    None,
    /// `n` random cables silently drop packets with probability `p` from
    /// `at`, optionally healing after `heal`. Routing sees nothing.
    Gray {
        /// Per-packet silent-loss probability in parts-per-million.
        p_ppm: u32,
        /// Onset instant.
        at: Time,
        /// Optional heal delay (`None` = permanent).
        heal: Option<Time>,
        /// Number of affected cables.
        n: u32,
    },
    /// `n` random cables corrupt payloads with probability `p` from `at`;
    /// corrupted packets are discarded and counted apart from drops.
    Corrupt {
        /// Per-packet corruption probability in parts-per-million.
        p_ppm: u32,
        /// Onset instant.
        at: Time,
        /// Optional heal delay (`None` = permanent).
        heal: Option<Time>,
        /// Number of affected cables.
        n: u32,
    },
    /// `n` random cables flap: each period starts down and spends
    /// `duty * period` up, from `at` to the cell horizon.
    Flap {
        /// Full flap period (down + up).
        period: Time,
        /// Up fraction of each period in parts-per-million (0 = a plain
        /// cut at onset, 1 000 000 = never actually down).
        duty_ppm: u32,
        /// First down instant.
        at: Time,
        /// Number of affected cables.
        n: u32,
    },
    /// The forward direction of `n` random cables blackholes at `at`
    /// while the reverse keeps working, optionally recovering.
    Unidir {
        /// Number of affected cables.
        n: u32,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay (`None` = permanent).
        heal: Option<Time>,
    },
}

/// Renders a ppm probability as its shortest exact decimal: `0`, `1`, or
/// `0.` + up to six digits with trailing zeros stripped.
fn render_ppm(ppm: u32) -> String {
    match ppm {
        0 => "0".to_string(),
        PPM => "1".to_string(),
        _ => {
            let frac = format!("{ppm:06}");
            format!("0.{}", frac.trim_end_matches('0'))
        }
    }
}

/// Parses a decimal probability in `[0, 1]` to parts-per-million; exact
/// inverse of [`render_ppm`] on canonical strings.
fn parse_ppm(s: &str) -> Result<u32, String> {
    let (int, frac) = match s.split_once('.') {
        None => (s, ""),
        Some((i, f)) => (i, f),
    };
    let digits = |v: &str| !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit());
    if !digits(int) || (!frac.is_empty() && !digits(frac)) {
        return Err(format!(
            "bad probability {s:?} (expected a decimal in [0,1], e.g. 0.01)"
        ));
    }
    if frac.len() > 6 {
        return Err(format!(
            "probability {s:?} is finer than ppm (at most 6 decimal digits)"
        ));
    }
    let int: u32 = int
        .parse()
        .map_err(|_| format!("bad probability {s:?} (integer part overflows)"))?;
    let mut padded = frac.to_string();
    while padded.len() < 6 {
        padded.push('0');
    }
    let frac_ppm: u32 = padded.parse().expect("six ascii digits");
    let ppm = int
        .checked_mul(PPM)
        .and_then(|v| v.checked_add(frac_ppm))
        .filter(|&v| v <= PPM)
        .ok_or_else(|| format!("probability {s:?} out of range (must be <= 1)"))?;
    Ok(ppm)
}

impl FaultSpec {
    /// Whether this is the default (no fault): the only value that keeps
    /// the `/ft=` component out of a cell key.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// The canonical label: one string per configuration, parameters at
    /// their defaults omitted, the exact inverse of [`FaultSpec::parse`].
    /// Feeds the cell key (as `/ft=<label>`, only when not `none`).
    pub fn label(&self) -> String {
        let mut params: Vec<String> = Vec::new();
        let family = match self {
            FaultSpec::None => return "none".to_string(),
            FaultSpec::Gray { p_ppm, at, heal, n } | FaultSpec::Corrupt { p_ppm, at, heal, n } => {
                if *p_ppm != DEFAULT_P_PPM {
                    params.push(format!("p={}", render_ppm(*p_ppm)));
                }
                if *at != DEFAULT_AT {
                    params.push(format!("at={}", at.label()));
                }
                if let Some(h) = heal {
                    params.push(format!("for={}", h.label()));
                }
                if *n != DEFAULT_N {
                    params.push(format!("n={n}"));
                }
                if matches!(self, FaultSpec::Gray { .. }) {
                    "gray"
                } else {
                    "corrupt"
                }
            }
            FaultSpec::Flap {
                period,
                duty_ppm,
                at,
                n,
            } => {
                if *period != DEFAULT_PERIOD {
                    params.push(format!("period={}", period.label()));
                }
                if *duty_ppm != DEFAULT_DUTY_PPM {
                    params.push(format!("duty={}", render_ppm(*duty_ppm)));
                }
                if *at != DEFAULT_AT {
                    params.push(format!("at={}", at.label()));
                }
                if *n != DEFAULT_N {
                    params.push(format!("n={n}"));
                }
                "flap"
            }
            FaultSpec::Unidir { n, at, heal } => {
                if *n != DEFAULT_N {
                    params.push(format!("n={n}"));
                }
                if *at != DEFAULT_AT {
                    params.push(format!("at={}", at.label()));
                }
                if let Some(h) = heal {
                    params.push(format!("for={}", h.label()));
                }
                "unidir"
            }
        };
        if params.is_empty() {
            family.to_string()
        } else {
            format!("{family}{{{}}}", params.join(","))
        }
    }

    /// Parses any spelling of a fault spec — `gray`, `gray{p=0.01}`,
    /// `flap{period=10ms,duty=0.5}` — into its typed form. Unknown
    /// families, unknown keys, malformed values and out-of-range
    /// parameters are reported, never panicked: the input is user text
    /// (a spec file line or a `--fault` flag).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        let (family, params) = match s.find('{') {
            None => (s, Vec::new()),
            Some(i) => {
                let inner = s[i + 1..]
                    .strip_suffix('}')
                    .ok_or_else(|| format!("fault spec {s:?}: missing closing brace"))?;
                let mut params = Vec::new();
                for kv in inner.split(',') {
                    let kv = kv.trim();
                    if kv.is_empty() {
                        continue;
                    }
                    let (k, v) = kv.split_once('=').ok_or_else(|| {
                        format!("fault spec {s:?}: parameter {kv:?} is not key=value")
                    })?;
                    params.push((k.trim(), v.trim()));
                }
                (&s[..i], params)
            }
        };
        let ctx = |e: String| format!("fault spec {s:?}: {e}");
        let time = |v: &str| Time::parse_label(v).map_err(ctx);
        let count = |v: &str| -> Result<u32, String> {
            let n: u32 = v
                .parse()
                .map_err(|e| ctx(format!("bad count {v:?}: {e}")))?;
            if n == 0 {
                return Err(ctx(format!("count {v:?} must be at least 1")));
            }
            Ok(n)
        };
        match family {
            "none" => {
                if !params.is_empty() {
                    return Err(ctx("none takes no parameters".to_string()));
                }
                Ok(FaultSpec::None)
            }
            "gray" | "corrupt" => {
                let (mut p_ppm, mut at, mut heal, mut n) =
                    (DEFAULT_P_PPM, DEFAULT_AT, None, DEFAULT_N);
                for (k, v) in params {
                    match k {
                        "p" => {
                            p_ppm = parse_ppm(v).map_err(ctx)?;
                            if p_ppm == 0 {
                                return Err(ctx(
                                    "p 0 is the healthy fabric — use fault=none".to_string()
                                ));
                            }
                        }
                        "at" => at = time(v)?,
                        "for" => heal = Some(time(v)?),
                        "n" => n = count(v)?,
                        other => {
                            return Err(ctx(format!(
                                "unknown {family} parameter {other:?} (p, at, for, n)"
                            )))
                        }
                    }
                }
                Ok(if family == "gray" {
                    FaultSpec::Gray { p_ppm, at, heal, n }
                } else {
                    FaultSpec::Corrupt { p_ppm, at, heal, n }
                })
            }
            "flap" => {
                let (mut period, mut duty_ppm, mut at, mut n) =
                    (DEFAULT_PERIOD, DEFAULT_DUTY_PPM, DEFAULT_AT, DEFAULT_N);
                for (k, v) in params {
                    match k {
                        "period" => {
                            period = time(v)?;
                            if period == Time::ZERO {
                                return Err(ctx("period must be positive".to_string()));
                            }
                        }
                        "duty" => duty_ppm = parse_ppm(v).map_err(ctx)?,
                        "at" => at = time(v)?,
                        "n" => n = count(v)?,
                        other => {
                            return Err(ctx(format!(
                                "unknown flap parameter {other:?} (period, duty, at, n)"
                            )))
                        }
                    }
                }
                Ok(FaultSpec::Flap {
                    period,
                    duty_ppm,
                    at,
                    n,
                })
            }
            "unidir" => {
                let (mut n, mut at, mut heal) = (DEFAULT_N, DEFAULT_AT, None);
                for (k, v) in params {
                    match k {
                        "n" => n = count(v)?,
                        "at" => at = time(v)?,
                        "for" => heal = Some(time(v)?),
                        other => {
                            return Err(ctx(format!(
                                "unknown unidir parameter {other:?} (n, at, for)"
                            )))
                        }
                    }
                }
                Ok(FaultSpec::Unidir { n, at, heal })
            }
            other => Err(format!(
                "unknown fault family {other:?} (none, gray, corrupt, flap, unidir)"
            )),
        }
    }

    /// Materializes the plan against `fabric`. The affected cables are a
    /// deterministic shuffle seeded by `seed` (cell-derived), and flap
    /// schedules are truncated at `horizon` (the cell deadline), so the
    /// same cell key always installs the same bounded control-event
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the fabric's cable count: the label
    /// advertises `n`, so an oversized request must fail loudly rather
    /// than silently model a different scenario.
    pub fn build(
        &self,
        fabric: &FatTreeConfig,
        topo_seed: u64,
        seed: u64,
        horizon: Time,
    ) -> FailurePlan {
        if self.is_none() {
            return FailurePlan::none();
        }
        let topo = Topology::build(fabric.clone(), topo_seed);
        let mut rng = Rng64::new(seed);
        let mut pairs = topo.cable_pairs();
        rng.shuffle(&mut pairs);
        let pick = |n: u32| -> &[(LinkId, LinkId)] {
            assert!(
                n as usize <= pairs.len(),
                "fault n={n} exceeds the fabric's {} cables",
                pairs.len()
            );
            &pairs[..n as usize]
        };
        let mut plan = FailurePlan::none();
        match self {
            FaultSpec::None => unreachable!("handled by the early return above"),
            FaultSpec::Gray { p_ppm, at, heal, n } => {
                for &pair in pick(*n) {
                    plan = plan.with(Failure::GrayDrop {
                        pair,
                        at: *at,
                        p: *p_ppm as f64 / PPM as f64,
                        duration: *heal,
                    });
                }
            }
            FaultSpec::Corrupt { p_ppm, at, heal, n } => {
                for &pair in pick(*n) {
                    plan = plan.with(Failure::Corrupt {
                        pair,
                        at: *at,
                        p: *p_ppm as f64 / PPM as f64,
                        duration: *heal,
                    });
                }
            }
            FaultSpec::Flap {
                period,
                duty_ppm,
                at,
                n,
            } => {
                // Integer ppm arithmetic: `up_time` is exact and the
                // duty=0 / duty=1 edges land exactly on ZERO / period.
                let up_time = Time::from_ps(
                    ((period.as_ps() as u128 * *duty_ppm as u128) / PPM as u128) as u64,
                );
                for &pair in pick(*n) {
                    plan = plan.with(Failure::Flap {
                        pair,
                        at: *at,
                        period: *period,
                        up_time,
                        until: horizon,
                    });
                }
            }
            FaultSpec::Unidir { n, at, heal } => {
                for &pair in pick(*n) {
                    plan = plan.with(Failure::UnidirBlackhole {
                        link: pair.0,
                        at: *at,
                        duration: *heal,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        FaultSpec::parse(s).expect(s).label()
    }

    #[test]
    fn ppm_rendering_is_shortest_exact_decimal() {
        assert_eq!(render_ppm(0), "0");
        assert_eq!(render_ppm(PPM), "1");
        assert_eq!(render_ppm(10_000), "0.01");
        assert_eq!(render_ppm(500_000), "0.5");
        assert_eq!(render_ppm(1), "0.000001");
        assert_eq!(render_ppm(123_450), "0.12345");
        for ppm in [0, 1, 10_000, 123_456, 500_000, 999_999, PPM] {
            assert_eq!(parse_ppm(&render_ppm(ppm)), Ok(ppm), "ppm {ppm}");
        }
    }

    #[test]
    fn ppm_parsing_rejects_junk() {
        assert!(parse_ppm("").is_err());
        assert!(parse_ppm(".").is_err());
        assert!(parse_ppm("0.0000001").is_err(), "finer than ppm");
        assert!(parse_ppm("1.1").is_err(), "above 1");
        assert!(parse_ppm("2").is_err());
        assert!(parse_ppm("-0.1").is_err());
        assert!(parse_ppm("0.1e3").is_err());
        // Non-canonical but exact spellings normalize.
        assert_eq!(parse_ppm("0.010"), Ok(10_000));
        assert_eq!(parse_ppm("1.0"), Ok(PPM));
        assert_eq!(parse_ppm("0.000000"), Ok(0));
    }

    #[test]
    fn canonical_labels_omit_defaults() {
        assert_eq!(roundtrip("none"), "none");
        assert_eq!(roundtrip("gray"), "gray");
        assert_eq!(roundtrip("gray{p=0.01}"), "gray", "default p collapses");
        assert_eq!(roundtrip("gray{p=0.05}"), "gray{p=0.05}");
        assert_eq!(
            roundtrip("gray{n=2,at=20us,p=0.05,for=100us}"),
            "gray{p=0.05,at=20us,for=100us,n=2}",
            "canonical parameter order"
        );
        assert_eq!(roundtrip("corrupt{p=0.001}"), "corrupt{p=0.001}");
        assert_eq!(roundtrip("flap"), "flap");
        assert_eq!(
            roundtrip("flap{period=10ms,duty=0.5}"),
            "flap{period=10000us}",
            "ms input canonicalizes, default duty collapses"
        );
        assert_eq!(roundtrip("flap{duty=0}"), "flap{duty=0}");
        assert_eq!(roundtrip("flap{duty=1}"), "flap{duty=1}");
        assert_eq!(roundtrip("unidir{n=1}"), "unidir");
        assert_eq!(roundtrip("unidir{n=3,for=200us}"), "unidir{n=3,for=200us}");
    }

    #[test]
    fn parse_errors_name_the_problem() {
        let err = |s: &str| FaultSpec::parse(s).unwrap_err();
        assert!(err("blackhole").contains("unknown fault family"));
        assert!(err("gray{q=1}").contains("unknown gray parameter"));
        assert!(err("gray{p=2}").contains("out of range"));
        assert!(err("gray{p=0}").contains("use fault=none"));
        assert!(err("gray{p=0.01").contains("missing closing brace"));
        assert!(err("gray{p}").contains("not key=value"));
        assert!(err("flap{period=0us}").contains("period must be positive"));
        assert!(err("flap{duty=1.5}").contains("out of range"));
        assert!(err("unidir{n=0}").contains("at least 1"));
        assert!(err("none{p=0.1}").contains("no parameters"));
    }

    #[test]
    fn build_is_deterministic_and_respects_n() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        let spec = FaultSpec::parse("gray{p=0.02,n=3}").unwrap();
        let a = spec.build(&fabric, 7, 99, Time::from_ms(2));
        let b = spec.build(&fabric, 7, 99, Time::from_ms(2));
        assert_eq!(a.len(), 3);
        let dump = |p: &FailurePlan| -> Vec<String> {
            p.failures.iter().map(|f| format!("{f:?}")).collect()
        };
        assert_eq!(dump(&a), dump(&b));
        // A different seed picks different cables.
        let c = spec.build(&fabric, 7, 100, Time::from_ms(2));
        assert_ne!(dump(&a), dump(&c));
    }

    #[test]
    fn flap_build_converts_duty_exactly() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        let horizon = Time::from_us(500);
        let up = |s: &str| -> Time {
            let plan = FaultSpec::parse(s).unwrap().build(&fabric, 1, 1, horizon);
            let Failure::Flap { up_time, until, .. } = plan.failures[0] else {
                panic!("expected a flap");
            };
            assert_eq!(until, horizon, "horizon threads through");
            up_time
        };
        assert_eq!(up("flap{period=100us,duty=0.5}"), Time::from_us(50));
        assert_eq!(up("flap{period=100us,duty=0}"), Time::ZERO);
        assert_eq!(up("flap{period=100us,duty=1}"), Time::from_us(100));
    }

    #[test]
    fn none_builds_an_empty_plan_without_touching_topology() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        let plan = FaultSpec::None.build(&fabric, 1, 1, Time::from_ms(2));
        assert!(plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the fabric")]
    fn oversized_n_fails_loudly() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        FaultSpec::parse("unidir{n=10000}")
            .unwrap()
            .build(&fabric, 1, 1, Time::from_ms(2));
    }
}
