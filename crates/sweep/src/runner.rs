//! Deterministic multi-threaded execution of independent sweep cells.
//!
//! A plain work-stealing pool over std threads and channels: items are
//! dealt round-robin into per-worker deques; a worker drains its own deque
//! from the front and steals from the back of the fullest other deque when
//! dry. Because every cell derives its RNG seed from its own key (never
//! from scheduling), results are identical for any thread count — the
//! pool only changes wall-clock time, never bytes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

use harness::experiment::{Experiment, Summary};

use crate::matrix::{Cell, CellResult};

/// A sensible default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count honouring the `REPS_THREADS` environment variable (the
/// figure binaries' knob), falling back to [`default_threads`].
pub fn threads_from_env() -> usize {
    std::env::var("REPS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default_threads)
}

/// Runs `f` over `items` on `threads` workers, returning results in input
/// order. The closure only sees one item at a time; nothing about
/// scheduling leaks into the results.
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    // Deal indices round-robin so initial queues are balanced even when
    // expensive cells cluster (e.g. all ECMP cells adjacent).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..items.len()).step_by(threads).collect()))
        .collect();
    type TaskResult<R> = std::thread::Result<R>;
    let (tx, rx) = mpsc::channel::<(usize, TaskResult<R>)>();
    // One task's failure cancels the whole sweep: every worker checks the
    // flag before taking another item, so a poisoned run stops after the
    // in-flight items instead of draining every queue first.
    let cancelled = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let queues = &queues;
            let cancelled = &cancelled;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = next_item(queues, cancelled, w) {
                    // Catch per-item panics so the collector can report
                    // *which* item failed with its original message,
                    // instead of a bare missing-result assertion.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i])));
                    let failed = r.is_err();
                    if failed {
                        cancelled.store(true, Ordering::Release);
                    }
                    // A send error means the collector is gone; stop.
                    if tx.send((i, r)).is_err() || failed {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            match r {
                Ok(v) => out[i] = Some(v),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    panic!("sweep task {i} panicked: {msg}");
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every index executed exactly once"))
            .collect()
    })
}

/// Pops the next index for worker `w`: front of its own deque, else steal
/// from the back of the fullest other deque. `None` once all deques are
/// empty (no task ever enqueues new work, so empty means done) or once
/// another worker has set the cancel flag — remaining queued items are
/// abandoned so a failed sweep stops promptly instead of running to the
/// end.
fn next_item(queues: &[Mutex<VecDeque<usize>>], cancelled: &AtomicBool, w: usize) -> Option<usize> {
    if cancelled.load(Ordering::Acquire) {
        return None;
    }
    if let Some(i) = queues[w].lock().expect("queue poisoned").pop_front() {
        return Some(i);
    }
    loop {
        if cancelled.load(Ordering::Acquire) {
            return None;
        }
        let victim = queues
            .iter()
            .enumerate()
            .filter(|(v, _)| *v != w)
            .max_by_key(|(_, q)| q.lock().expect("queue poisoned").len())?;
        let stolen = victim.1.lock().expect("queue poisoned").pop_back();
        match stolen {
            Some(i) => return Some(i),
            // The victim drained between inspection and steal; rescan, and
            // give up once every queue is empty.
            None => {
                if queues
                    .iter()
                    .all(|q| q.lock().expect("queue poisoned").is_empty())
                {
                    return None;
                }
            }
        }
    }
}

/// Runs every cell on `threads` workers and returns the results sorted by
/// cell key — the canonical, scheduling-independent output order.
pub fn run_cells(cells: &[Cell], threads: usize) -> Vec<CellResult> {
    let mut results = run_indexed(cells, threads, Cell::run);
    results.sort_by(|a, b| a.key.cmp(&b.key));
    results
}

/// Runs pre-built experiments in parallel, preserving input order (the
/// figure binaries' lineup contract).
pub fn run_experiments(exps: &[Experiment], threads: usize) -> Vec<Summary> {
    run_indexed(exps, threads, |e| e.run().summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_indexed_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let out = run_indexed(&items, 7, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let one = run_indexed(&items, 1, |&x| x.wrapping_mul(0x9e3779b9));
        for threads in [2, 3, 8, 64, 200] {
            assert_eq!(
                one,
                run_indexed(&items, threads, |&x| x.wrapping_mul(0x9e3779b9))
            );
        }
    }

    #[test]
    fn panicking_task_reports_its_index_and_message() {
        let items: Vec<u64> = (0..10).collect();
        let err = std::panic::catch_unwind(|| {
            run_indexed(&items, 3, |&x| {
                if x == 7 {
                    panic!("boom on {x}");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(msg.contains("task 7"), "{msg}");
        assert!(msg.contains("boom on 7"), "{msg}");
    }

    #[test]
    fn poisoned_run_cancels_the_remaining_queue() {
        // 1000 items, the very first one panics. Without cross-worker
        // cancellation the other workers drain their full queues (and this
        // test takes ~1000 × 1ms of sleeps); with it, only the handful of
        // items already in flight when the poison lands ever execute.
        let items: Vec<u64> = (0..1000).collect();
        let calls = AtomicUsize::new(0);
        // detlint: allow(DET002) — test-only timing bound; asserts wall-clock, not results
        let start = std::time::Instant::now();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(&items, 4, |&x| {
                calls.fetch_add(1, Ordering::SeqCst);
                if x == 0 {
                    panic!("poisoned cell");
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("formatted message");
        assert!(msg.contains("poisoned cell"), "{msg}");
        let executed = calls.load(Ordering::SeqCst);
        assert!(
            executed < items.len() / 2,
            "cancel flag ignored: {executed} of {} items ran after the poison",
            items.len()
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "poisoned run did not stop promptly"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = run_indexed(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One item is 1000x the work of the rest; with 4 workers the run
        // must still complete every item (stealing keeps the others busy).
        let items: Vec<u64> = (0..40).collect();
        let out = run_indexed(&items, 4, |&x| {
            let spins = if x == 0 { 200_000 } else { 200 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 40);
    }
}
