//! Live progress line for `repsbench run` (stderr-only, TTY-gated).
//!
//! A sweep can run for minutes; this module keeps one line on stderr up to
//! date as cells finish: cells done / total, how many actually executed
//! versus answered from the cache, the aggregate simulation rate, and an
//! ETA extrapolated from the elapsed wall-clock. The line goes to stderr
//! only — stdout stays reserved for the byte-stable JSONL stream — and is
//! suppressed entirely when stderr is not a terminal (CI logs, pipes), so
//! redirected output never collects carriage returns.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::Instant;

/// Renders the progress line from raw counters (pure — unit-testable
/// without a terminal). `elapsed_secs` is wall-clock time since the sweep
/// started; `events` is the total simulator events of executed cells.
pub fn render_line(
    done: usize,
    total: usize,
    executed: usize,
    hits: usize,
    events: u64,
    elapsed_secs: f64,
) -> String {
    let rate = if elapsed_secs > 0.0 && events > 0 {
        let evs = events as f64 / elapsed_secs;
        if evs >= 1e6 {
            format!(" | {:.1}M ev/s", evs / 1e6)
        } else {
            format!(" | {:.0}k ev/s", evs / 1e3)
        }
    } else {
        String::new()
    };
    let eta = if done > 0 && done < total && elapsed_secs > 0.0 {
        let remaining = elapsed_secs / done as f64 * (total - done) as f64;
        if remaining >= 120.0 {
            format!(" | ETA {:.0}m", remaining / 60.0)
        } else {
            format!(" | ETA {remaining:.0}s")
        }
    } else {
        String::new()
    };
    format!("[{done}/{total}] {executed} run, {hits} cached{rate}{eta}")
}

#[derive(Debug, Default)]
struct State {
    done: usize,
    executed: usize,
    hits: usize,
    events: u64,
}

/// A thread-safe progress reporter. Construct with [`Progress::stderr`];
/// workers call [`Progress::tick_executed`] / [`Progress::tick_hit`] as
/// cells finish. Every tick rewrites the line in place (`\r` + erase); an
/// inactive reporter (stderr not a TTY) makes every call a no-op.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    started: Instant,
    state: Mutex<State>,
    active: bool,
}

impl Progress {
    /// A reporter for `total` cells, active only when stderr is a terminal.
    pub fn stderr(total: usize) -> Progress {
        Progress::with_active(total, std::io::stderr().is_terminal())
    }

    /// A reporter with explicit activation (tests).
    pub fn with_active(total: usize, active: bool) -> Progress {
        Progress {
            total,
            // detlint: allow(DET002) — ETA display on stderr only; never reaches result bytes
            started: Instant::now(),
            state: Mutex::new(State::default()),
            active,
        }
    }

    /// Whether ticks actually draw anything.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Records one freshly executed cell (`events` = its simulator events).
    pub fn tick_executed(&self, events: u64) {
        if !self.active {
            return;
        }
        let line = {
            let mut s = self.state.lock().expect("progress poisoned");
            s.done += 1;
            s.executed += 1;
            s.events += events;
            self.line(&s)
        };
        self.draw(&line);
    }

    /// Records one cache hit.
    pub fn tick_hit(&self) {
        if !self.active {
            return;
        }
        let line = {
            let mut s = self.state.lock().expect("progress poisoned");
            s.done += 1;
            s.hits += 1;
            self.line(&s)
        };
        self.draw(&line);
    }

    /// Erases the line so the final report starts on a clean row.
    pub fn finish(&self) {
        if self.active {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r\x1b[K");
            let _ = err.flush();
        }
    }

    fn line(&self, s: &State) -> String {
        render_line(
            s.done,
            self.total,
            s.executed,
            s.hits,
            s.events,
            self.started.elapsed().as_secs_f64(),
        )
    }

    fn draw(&self, line: &str) {
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[K{line}");
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shows_counts_rate_and_eta() {
        let l = render_line(10, 40, 6, 4, 30_000_000, 10.0);
        assert_eq!(l, "[10/40] 6 run, 4 cached | 3.0M ev/s | ETA 30s");
        // Sub-million rates use the k suffix; long ETAs switch to minutes.
        let l = render_line(1, 100, 1, 0, 5_000_000, 10.0);
        assert!(l.contains("500k ev/s"), "{l}");
        assert!(l.contains("ETA 16m"), "{l}");
    }

    #[test]
    fn line_degrades_without_data() {
        // No events (all cache hits) → no rate; done == total → no ETA.
        assert_eq!(render_line(5, 5, 0, 5, 0, 2.0), "[5/5] 0 run, 5 cached");
        // Nothing done yet → neither rate nor ETA.
        assert_eq!(render_line(0, 9, 0, 0, 0, 0.0), "[0/9] 0 run, 0 cached");
    }

    #[test]
    fn inactive_reporter_ignores_ticks() {
        let p = Progress::with_active(3, false);
        assert!(!p.is_active());
        p.tick_executed(1000);
        p.tick_hit();
        p.finish();
        // Counters still start untouched — ticks short-circuit entirely.
        assert_eq!(p.state.lock().unwrap().done, 0);
    }

    #[test]
    fn active_reporter_accumulates() {
        let p = Progress::with_active(3, true);
        p.tick_executed(1_000);
        p.tick_executed(2_000);
        p.tick_hit();
        let s = p.state.lock().unwrap();
        assert_eq!((s.done, s.executed, s.hits, s.events), (3, 2, 1, 3_000));
    }
}
