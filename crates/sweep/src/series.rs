//! Opt-in per-cell time-series sink (`repsbench run --series DIR`).
//!
//! Summaries tell you *whether* a scheme won; the paper's micro figures
//! argue *why* with link-utilization and queue-occupancy series. This
//! module streams those series out of every executed cell without touching
//! the byte-stable result JSONL: each cell writes one self-describing
//! document at
//!
//! ```text
//! DIR/<derived_seed as 16 hex digits>.series.jsonl
//! ```
//!
//! Tracking covers the uplinks of the cell's vantage ToR — ToR 0, the
//! micro figures' vantage point, unless the grid's `track` axis selects
//! another (see [`crate::matrix::ScenarioMatrix::track`]; non-default
//! vantages are keyed as `tk=N`, so they are distinct cells). Queue
//! sampling runs up to [`SAMPLE_HORIZON`] of simulated time, so a stalled
//! cell cannot balloon its document.
//!
//! # Record schema
//!
//! Line 1 is a header, then one record per tracked link (in deterministic
//! tracking order):
//!
//! ```text
//! {"key":"<cell key>","derived_seed":N,"bucket_width_ps":N,
//!  "sample_period_ps":N,"links":N}
//! {"link":<link id>,"bucket_bytes":[b0,b1,...],
//!  "queue_samples":[[at_ps,bytes],...]}
//! ```
//!
//! `bucket_bytes[i]` is the bytes serialized onto the link during
//! utilization bucket `i` (bucket `i` covers
//! `[i*bucket_width, (i+1)*bucket_width)`; divide by the width for Gbps —
//! [`netsim::stats::bucket_gbps`]). `queue_samples` pairs are
//! `(sample instant in ps, queued bytes)`.
//!
//! # Determinism contract
//!
//! A cell's document is a pure function of its key: instrumentation only
//! *reads* fabric state, so enabling `--series` changes neither the result
//! bytes nor any derived seed, and the same cell writes identical series
//! bytes at any `--threads` value or shard split. Files are stored
//! atomically (temp + rename), and because each cell owns exactly one
//! file, shards writing into one shared directory — or the same directory
//! merged after the fact — produce the identical directory an unsharded
//! run would. Every line parses with [`harness::json::Value`] and
//! re-renders byte-exactly.
//!
//! With `--cache`, a cached result can only stand in for an execution if
//! its series document already exists: [`SeriesSink::has`] gates cache
//! hits, so a warm cache pointed at an empty series directory re-runs the
//! cells rather than silently leaving the series out.

use std::io;
use std::path::{Path, PathBuf};

use netsim::time::Time;

use crate::matrix::Cell;

/// Queue sampling stops after this much simulated time even when the cell
/// runs longer: at the paper profile's 1 µs sample period this bounds the
/// document at 2000 samples per tracked link, while quick-scale cells
/// (hundreds of µs) are covered end to end. Utilization buckets are not
/// capped — they cost one `u64` per 20 µs of simulated time.
pub const SAMPLE_HORIZON: Time = Time::from_ms(2);

/// Renders one cell's canonical series document (header + one record per
/// tracked link, one JSON object per line, trailing newline).
pub fn series_doc<S: netsim::trace::TraceSink>(
    cell: &Cell,
    engine: &netsim::engine::Engine<S>,
) -> String {
    use harness::json::{array, Object};
    let export = engine.stats.export_series();
    let mut doc = String::new();
    doc.push_str(
        &Object::new()
            .str("key", &cell.key())
            .u64("derived_seed", cell.derived_seed())
            .u64("bucket_width_ps", export.bucket_width.as_ps())
            .u64("sample_period_ps", engine.cfg.sample_period.as_ps())
            .u64("links", export.links.len() as u64)
            .render(),
    );
    doc.push('\n');
    for (link, series) in &export.links {
        let buckets = array(series.bucket_bytes.iter().map(u64::to_string));
        let samples = array(
            series
                .queue_samples
                .iter()
                .map(|s| array([s.at.as_ps().to_string(), s.bytes.to_string()])),
        );
        doc.push_str(
            &Object::new()
                .u64("link", link.0 as u64)
                .raw("bucket_bytes", buckets)
                .raw("queue_samples", samples)
                .render(),
        );
        doc.push('\n');
    }
    doc
}

/// An open (created) series output directory.
#[derive(Debug, Clone)]
pub struct SeriesSink {
    dir: PathBuf,
}

impl SeriesSink {
    /// Opens `dir`, creating it if needed.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<SeriesSink> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(SeriesSink { dir })
    }

    /// The directory documents are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The document path for a cell with the given derived seed.
    pub fn path_for(&self, derived_seed: u64) -> PathBuf {
        self.dir.join(format!("{derived_seed:016x}.series.jsonl"))
    }

    /// Whether `cell`'s document already exists *for this exact cell*: the
    /// header's embedded key must match, so a foreign file or 64-bit hash
    /// collision reads as absent rather than trusted. Only the header line
    /// is read — warm `--cache --series` re-runs probe every cell, and
    /// utilization buckets can make the document body large.
    pub fn has(&self, cell: &Cell) -> bool {
        use std::io::BufRead;
        let Ok(file) = std::fs::File::open(self.path_for(cell.derived_seed())) else {
            return false;
        };
        let mut header = String::new();
        if std::io::BufReader::new(file)
            .read_line(&mut header)
            .is_err()
        {
            return false;
        }
        let Ok(v) = harness::json::Value::parse(header.trim_end_matches('\n')) else {
            return false;
        };
        v.get("key").and_then(|k| k.as_str()) == Some(cell.key().as_str())
    }

    /// Stores one document atomically (write to a temp file in the same
    /// directory, then rename, so concurrent readers never see a torn
    /// document).
    pub fn store(&self, derived_seed: u64, doc: &str) -> io::Result<()> {
        let path = self.path_for(derived_seed);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;
    use crate::spec::WorkloadSpec;

    fn cell() -> Cell {
        ScenarioMatrix::new("series-unit")
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .expand()
            .remove(0)
    }

    #[test]
    fn doc_is_canonical_and_self_describing() {
        let c = cell();
        let (res, doc) = c.run_with_series();
        assert!(res.summary.completed);
        let lines: Vec<&str> = doc.lines().collect();
        assert!(doc.ends_with('\n'));
        let header = harness::json::Value::parse(lines[0]).expect("header parses");
        assert_eq!(header.get("key").unwrap().as_str(), Some(c.key().as_str()));
        assert_eq!(
            header.get("derived_seed").unwrap().as_u64(),
            Some(c.derived_seed())
        );
        let links = header.get("links").unwrap().as_u64().unwrap() as usize;
        assert!(links > 0, "ToR 0 must have tracked uplinks");
        assert_eq!(lines.len(), 1 + links);
        let mut saw_traffic = false;
        for line in &lines[1..] {
            // Canonical: every record re-renders byte-exactly.
            let v = harness::json::Value::parse(line).expect("record parses");
            assert_eq!(v.render(), *line);
            let buckets = match v.get("bucket_bytes") {
                Some(harness::json::Value::Arr(items)) => items.len(),
                other => panic!("bucket_bytes shape: {other:?}"),
            };
            saw_traffic |= buckets > 0;
            assert!(
                matches!(v.get("queue_samples"), Some(harness::json::Value::Arr(s)) if !s.is_empty()),
                "queue sampling must have run: {line}"
            );
        }
        assert!(saw_traffic, "a tornado must load some ToR-0 uplink");
    }

    #[test]
    fn instrumentation_does_not_change_the_result_record() {
        let c = cell();
        let plain = c.run();
        let (instrumented, _) = c.run_with_series();
        assert_eq!(
            crate::sink::jsonl_record(&plain),
            crate::sink::jsonl_record(&instrumented),
            "--series must not perturb the byte-stable result stream"
        );
    }

    #[test]
    fn docs_are_deterministic() {
        let c = cell();
        assert_eq!(c.run_with_series().1, c.run_with_series().1);
    }

    #[test]
    fn sink_stores_and_validates_ownership() {
        let dir = std::env::temp_dir().join(format!("reps-series-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = SeriesSink::create(&dir).unwrap();
        let c = cell();
        assert!(!sink.has(&c), "empty sink has nothing");
        let (_, doc) = c.run_with_series();
        sink.store(c.derived_seed(), &doc).unwrap();
        assert!(sink.has(&c));
        assert_eq!(
            std::fs::read_to_string(sink.path_for(c.derived_seed())).unwrap(),
            doc
        );
        // A foreign document under this cell's address reads as absent.
        sink.store(c.derived_seed(), "{\"key\":\"someone-else\"}\n")
            .unwrap();
        assert!(!sink.has(&c));
        std::fs::write(sink.path_for(c.derived_seed()), "not json").unwrap();
        assert!(!sink.has(&c));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
