//! Opt-in per-cell flight-recorder sink (`repsbench run --trace DIR`).
//!
//! Where `--series` records what the fabric *carried*, `--trace` records
//! what the simulation *decided*: every per-hop path choice, every entropy
//! value a load balancer picked (and whether it was fresh, recycled or a
//! frozen replay), every reorder a receiver absorbed, and every failure
//! plus the transport's reaction to it. Each executed cell writes one
//! self-describing document at
//!
//! ```text
//! DIR/<derived_seed as 16 hex digits>.trace.jsonl
//! ```
//!
//! # Record schema
//!
//! Line 1 is a header, then one record per event in simulation order:
//!
//! ```text
//! {"key":"<cell key>","derived_seed":N,"events":N}
//! {"t":<ps>,"kind":"ev_choice","host":H,"conn":C,"ev":E,
//!  "decision":"recycled","frozen":false}
//! ```
//!
//! Every record carries `t` (simulated picoseconds) and `kind`; the
//! remaining fields are the event's own identifiers (switch, link, host,
//! connection, entropy value). Kinds: `path_choice`, `ev_choice`,
//! `freeze`, `thaw`, `reorder`, `retransmit`, `timeout`, `link_down`,
//! `link_up`, `link_rate`, `link_ber`, `link_gray`, `link_corrupt`,
//! `switch_down`, `switch_up`, `fluid_resolve`. The gray/corrupt records
//! carry `on` (true at fault onset, false at heal), so a trace shows the
//! full fault timeline; `fluid_resolve` records carry `active`
//! (background flows) and `updated` (links whose residual rate changed),
//! so a hybrid cell's trace shows every background re-solve.
//!
//! # Determinism contract
//!
//! A cell's trace is a pure function of its key: events are emitted in
//! simulation order by a single-threaded engine whose RNG seed derives
//! from the key alone, so the same cell writes byte-identical trace
//! documents at any `--threads` value or shard split (pinned by
//! `tests/trace.rs`). Files are stored atomically (temp + rename), one
//! cell per file, so shards writing into one directory — or directories
//! merged after the fact — produce the identical tree an unsharded run
//! would.
//!
//! With `--cache`, a cached result can only stand in for an execution if
//! its trace document already exists: [`TraceStore::has`] gates cache
//! hits exactly like [`crate::series::SeriesSink::has`].

use std::io;
use std::path::{Path, PathBuf};

use netsim::trace::TraceEvent;

use crate::matrix::Cell;

/// Renders one recorded event as its canonical JSON line (no newline).
pub fn event_record(e: &TraceEvent) -> String {
    use harness::json::Object;
    let base = |kind: &str| Object::new().u64("t", e.at().as_ps()).str("kind", kind);
    match *e {
        TraceEvent::PathChoice { sw, link, ev, .. } => base("path_choice")
            .u64("sw", sw.0 as u64)
            .u64("link", link.0 as u64)
            .u64("ev", ev as u64)
            .render(),
        TraceEvent::EvChoice {
            host,
            conn,
            ev,
            decision,
            frozen,
            ..
        } => base("ev_choice")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .u64("ev", ev as u64)
            .str("decision", decision.label())
            .bool("frozen", frozen)
            .render(),
        TraceEvent::Freeze { host, conn, .. } => base("freeze")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .render(),
        TraceEvent::Thaw { host, conn, .. } => base("thaw")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .render(),
        TraceEvent::Reorder {
            host, conn, depth, ..
        } => base("reorder")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .u64("depth", depth as u64)
            .render(),
        TraceEvent::Retransmit {
            host,
            conn,
            seq,
            ev,
            ..
        } => base("retransmit")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .u64("seq", seq)
            .u64("ev", ev as u64)
            .render(),
        TraceEvent::Timeout {
            host,
            conn,
            expired,
            ..
        } => base("timeout")
            .u64("host", host.0 as u64)
            .u64("conn", conn as u64)
            .u64("expired", expired as u64)
            .render(),
        TraceEvent::LinkDown { link, .. } => base("link_down").u64("link", link.0 as u64).render(),
        TraceEvent::LinkUp { link, .. } => base("link_up").u64("link", link.0 as u64).render(),
        TraceEvent::LinkRate { link, bps, .. } => base("link_rate")
            .u64("link", link.0 as u64)
            .u64("bps", bps)
            .render(),
        TraceEvent::LinkBer { link, .. } => base("link_ber").u64("link", link.0 as u64).render(),
        TraceEvent::LinkGray { link, on, .. } => base("link_gray")
            .u64("link", link.0 as u64)
            .bool("on", on)
            .render(),
        TraceEvent::LinkCorrupt { link, on, .. } => base("link_corrupt")
            .u64("link", link.0 as u64)
            .bool("on", on)
            .render(),
        TraceEvent::SwitchDown { sw, .. } => base("switch_down").u64("sw", sw.0 as u64).render(),
        TraceEvent::SwitchUp { sw, .. } => base("switch_up").u64("sw", sw.0 as u64).render(),
        TraceEvent::FluidResolve {
            active, updated, ..
        } => base("fluid_resolve")
            .u64("active", active as u64)
            .u64("updated", updated as u64)
            .render(),
    }
}

/// Renders one cell's canonical trace document (header + one JSON object
/// per event in simulation order, trailing newline).
pub fn trace_doc(cell: &Cell, events: &[TraceEvent]) -> String {
    use harness::json::Object;
    let mut doc = String::new();
    doc.push_str(
        &Object::new()
            .str("key", &cell.key())
            .u64("derived_seed", cell.derived_seed())
            .u64("events", events.len() as u64)
            .render(),
    );
    doc.push('\n');
    for e in events {
        doc.push_str(&event_record(e));
        doc.push('\n');
    }
    doc
}

/// An open (created) trace output directory.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// Opens `dir`, creating it if needed.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<TraceStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir })
    }

    /// The directory documents are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The document path for a cell with the given derived seed.
    pub fn path_for(&self, derived_seed: u64) -> PathBuf {
        self.dir.join(format!("{derived_seed:016x}.trace.jsonl"))
    }

    /// Whether `cell`'s document already exists *for this exact cell*: the
    /// header's embedded key must match, so a foreign file or 64-bit hash
    /// collision reads as absent rather than trusted. Only the header line
    /// is read — traces under failure scenarios can run to many thousands
    /// of events.
    pub fn has(&self, cell: &Cell) -> bool {
        use std::io::BufRead;
        let Ok(file) = std::fs::File::open(self.path_for(cell.derived_seed())) else {
            return false;
        };
        let mut header = String::new();
        if std::io::BufReader::new(file)
            .read_line(&mut header)
            .is_err()
        {
            return false;
        }
        let Ok(v) = harness::json::Value::parse(header.trim_end_matches('\n')) else {
            return false;
        };
        v.get("key").and_then(|k| k.as_str()) == Some(cell.key().as_str())
    }

    /// Stores one document atomically (write to a temp file in the same
    /// directory, then rename, so concurrent readers never see a torn
    /// document).
    pub fn store(&self, derived_seed: u64, doc: &str) -> io::Result<()> {
        let path = self.path_for(derived_seed);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;
    use crate::spec::WorkloadSpec;
    use netsim::ids::{HostId, LinkId, SwitchId};
    use netsim::time::Time;
    use netsim::trace::EvDecision;

    fn cell() -> Cell {
        ScenarioMatrix::new("trace-unit")
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .expand()
            .remove(0)
    }

    #[test]
    fn every_event_kind_renders_canonically() {
        let at = Time::from_us(7);
        let events = [
            TraceEvent::PathChoice {
                at,
                sw: SwitchId(1),
                link: LinkId(2),
                ev: 3,
            },
            TraceEvent::EvChoice {
                at,
                host: HostId(4),
                conn: 5,
                ev: 6,
                decision: EvDecision::Recycled,
                frozen: false,
            },
            TraceEvent::Freeze {
                at,
                host: HostId(4),
                conn: 5,
            },
            TraceEvent::Thaw {
                at,
                host: HostId(4),
                conn: 5,
            },
            TraceEvent::Reorder {
                at,
                host: HostId(4),
                conn: 5,
                depth: 9,
            },
            TraceEvent::Retransmit {
                at,
                host: HostId(4),
                conn: 5,
                seq: 77,
                ev: 6,
            },
            TraceEvent::Timeout {
                at,
                host: HostId(4),
                conn: 5,
                expired: 2,
            },
            TraceEvent::LinkDown {
                at,
                link: LinkId(2),
            },
            TraceEvent::LinkUp {
                at,
                link: LinkId(2),
            },
            TraceEvent::LinkRate {
                at,
                link: LinkId(2),
                bps: 100_000_000_000,
            },
            TraceEvent::LinkBer {
                at,
                link: LinkId(2),
            },
            TraceEvent::LinkGray {
                at,
                link: LinkId(2),
                on: true,
            },
            TraceEvent::LinkCorrupt {
                at,
                link: LinkId(2),
                on: false,
            },
            TraceEvent::SwitchDown {
                at,
                sw: SwitchId(1),
            },
            TraceEvent::SwitchUp {
                at,
                sw: SwitchId(1),
            },
        ];
        let mut kinds = Vec::new();
        for e in &events {
            let line = event_record(e);
            let v = harness::json::Value::parse(&line).expect("record parses");
            // Canonical: every record re-renders byte-exactly.
            assert_eq!(v.render(), line);
            assert_eq!(v.get("t").unwrap().as_u64(), Some(at.as_ps()));
            kinds.push(v.get("kind").unwrap().as_str().unwrap().to_string());
        }
        assert_eq!(
            kinds,
            [
                "path_choice",
                "ev_choice",
                "freeze",
                "thaw",
                "reorder",
                "retransmit",
                "timeout",
                "link_down",
                "link_up",
                "link_rate",
                "link_ber",
                "link_gray",
                "link_corrupt",
                "switch_down",
                "switch_up"
            ]
        );
    }

    #[test]
    fn doc_is_self_describing() {
        let c = cell();
        let events = [TraceEvent::LinkDown {
            at: Time::from_us(1),
            link: LinkId(0),
        }];
        let doc = trace_doc(&c, &events);
        assert!(doc.ends_with('\n'));
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        let header = harness::json::Value::parse(lines[0]).expect("header parses");
        assert_eq!(header.get("key").unwrap().as_str(), Some(c.key().as_str()));
        assert_eq!(
            header.get("derived_seed").unwrap().as_u64(),
            Some(c.derived_seed())
        );
        assert_eq!(header.get("events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn store_validates_ownership() {
        let dir = std::env::temp_dir().join(format!("reps-trace-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::create(&dir).unwrap();
        let c = cell();
        assert!(!store.has(&c), "empty store has nothing");
        let doc = trace_doc(&c, &[]);
        store.store(c.derived_seed(), &doc).unwrap();
        assert!(store.has(&c));
        assert_eq!(
            std::fs::read_to_string(store.path_for(c.derived_seed())).unwrap(),
            doc
        );
        // A foreign document under this cell's address reads as absent.
        store
            .store(c.derived_seed(), "{\"key\":\"someone-else\"}\n")
            .unwrap();
        assert!(!store.has(&c));
        std::fs::write(store.path_for(c.derived_seed()), "not json").unwrap();
        assert!(!store.has(&c));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
