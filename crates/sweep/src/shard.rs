//! Deterministic sweep partitioning for fleet runs (`--shard i/n`).
//!
//! A shard owns the cells whose *key hash* lands in its residue class:
//! cell ∈ shard `i/n` ⇔ `fnv1a64(key) % n == i-1`. Hashing the key (rather
//! than slicing the expanded cell list by index) keeps shard membership a
//! pure function of what the cell *is*, so changing `--filter`, adding a
//! preset or reordering axes never moves a surviving cell to a different
//! shard — exactly the property that makes the per-cell cache and
//! `repsbench merge` composable with sharding.
//!
//! Every cell belongs to exactly one shard of any given count, and the
//! union of `merge`d shard outputs is byte-identical to the unsharded run
//! (enforced by `tests/shard_merge.rs` and the CI `sweep-shard-smoke`
//! job).

use crate::matrix::Cell;

/// One shard of an `n`-way deterministic sweep partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index (`1..=count`).
    pub index: u32,
    /// Total shard count (≥ 1).
    pub count: u32,
}

impl Shard {
    /// Parses the CLI form `i/n` (e.g. `2/4`). `i` is 1-based and must
    /// satisfy `1 <= i <= n`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("--shard: expected i/n (e.g. 2/4), got {s:?}"))?;
        let index: u32 = i
            .parse()
            .map_err(|e| format!("--shard: bad index {i:?}: {e}"))?;
        let count: u32 = n
            .parse()
            .map_err(|e| format!("--shard: bad count {n:?}: {e}"))?;
        if count == 0 {
            return Err("--shard: count must be at least 1".to_string());
        }
        if index == 0 || index > count {
            return Err(format!(
                "--shard: index {index} out of range 1..={count} (indices are 1-based)"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns `cell` — by key hash, so membership never
    /// depends on filters or expansion order.
    pub fn contains(&self, cell: &Cell) -> bool {
        cell.derived_seed() % self.count as u64 == (self.index - 1) as u64
    }

    /// Keeps only the cells this shard owns (preserving order).
    pub fn select(&self, cells: Vec<Cell>) -> Vec<Cell> {
        cells.into_iter().filter(|c| self.contains(c)).collect()
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;
    use crate::spec::WorkloadSpec;

    fn cells() -> Vec<Cell> {
        ScenarioMatrix::new("shard-test")
            .workloads([
                WorkloadSpec::Tornado { bytes: 32 << 10 },
                WorkloadSpec::Permutation { bytes: 32 << 10 },
            ])
            .seeds(8)
            .expand()
    }

    #[test]
    fn parse_accepts_valid_and_rejects_malformed() {
        assert_eq!(Shard::parse("1/1"), Ok(Shard { index: 1, count: 1 }));
        assert_eq!(Shard::parse("2/4"), Ok(Shard { index: 2, count: 4 }));
        for bad in [
            "", "2", "/", "0/4", "5/4", "0/0", "a/4", "2/b", "2/0", "-1/4", "1/4/2",
        ] {
            assert!(Shard::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(Shard { index: 3, count: 8 }.to_string(), "3/8");
    }

    #[test]
    fn every_cell_lands_in_exactly_one_shard() {
        let cells = cells();
        for count in [1u32, 2, 3, 5, 7] {
            for cell in &cells {
                let owners: Vec<u32> = (1..=count)
                    .filter(|&i| Shard { index: i, count }.contains(cell))
                    .collect();
                assert_eq!(owners.len(), 1, "cell {} owners {owners:?}", cell.key());
            }
        }
    }

    #[test]
    fn membership_is_independent_of_filters_and_order() {
        let all = cells();
        let shard = Shard { index: 2, count: 3 };
        let owned: std::collections::BTreeSet<String> =
            shard.select(all.clone()).iter().map(Cell::key).collect();
        // A filtered subset keeps exactly the owned ∩ subset cells.
        let subset: Vec<Cell> = all
            .iter()
            .filter(|c| c.workload.label().starts_with("tornado"))
            .cloned()
            .collect();
        for c in shard.select(subset) {
            assert!(owned.contains(&c.key()));
        }
        // Reversing the input changes selection order, not membership.
        let mut reversed = all.clone();
        reversed.reverse();
        let owned_rev: std::collections::BTreeSet<String> =
            shard.select(reversed).iter().map(Cell::key).collect();
        assert_eq!(owned, owned_rev);
    }
}
