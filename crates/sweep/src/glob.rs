//! A minimal glob matcher for preset/cell filters (`*` and `?` only).

/// Returns whether `name` matches `pattern` (`*` = any run, `?` = any one
/// character, everything else literal; case-sensitive).
pub fn matches(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Iterative backtracking over the last `*`.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut star_ni) = (None::<usize>, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_ni = ni;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_ni += 1;
            ni = star_ni;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_wildcards() {
        assert!(matches("fig03-symmetric-macro", "fig03-symmetric-macro"));
        assert!(matches("fig0*", "fig03-symmetric-macro"));
        assert!(matches("*macro*", "fig03-symmetric-macro"));
        assert!(matches("fig0?-*", "fig03-symmetric-macro"));
        assert!(!matches("fig0*", "fig21-three-tier"));
        assert!(!matches("fig03", "fig03-symmetric-macro"));
        assert!(matches("*", "anything"));
        assert!(matches("", ""));
        assert!(!matches("", "x"));
    }

    #[test]
    fn star_backtracks() {
        assert!(matches("a*b*c", "a-xx-b-yy-c"));
        assert!(!matches("a*b*c", "a-xx-c-yy-b"));
        assert!(matches("*ab", "aab"));
    }
}
