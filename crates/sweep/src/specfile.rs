//! The `repsbench` grid file format: user-defined scenario matrices as
//! plain text (`repsbench run --spec-file PATH`), no TOML dependency.
//!
//! A spec file is line-oriented: `[name]` opens a matrix, `axis = v1, v2`
//! lines widen its axes, `#` starts a comment, blank lines separate.
//! Axis values use exactly the same stable labels that appear in cell
//! keys, so a grid is readable next to its results and every built-in
//! preset can be re-expressed as text with identical cell keys (pinned by
//! `tests/specfile.rs`):
//!
//! ```text
//! # REPS vs. oblivious spraying across oversubscription ratios.
//! [oversub-demo]
//! fabric   = ls-8x8-o1, ls-8x8-o2, ls-8x8-o4
//! lb       = OPS, REPS
//! workload = perm-131072B
//! failure  = none, degraded10pct-200G
//! seed     = 0, 1
//!
//! # How fast must routing reconverge for spraying to ride out a cut?
//! [reconv-demo]
//! lb       = OPS, REPS
//! workload = perm-262144B
//! failure  = cable1-at8us-perm
//! reconv   = none, 25us, 100us
//! ```
//!
//! Axes: `fabric`, `lb`, `workload`, `failure`, `reconv`, `track`,
//! `fault`, `fidelity`, `seed`, `cc`, `coalesce`, plus the single-valued
//! settings `sim`, `background` and `deadline`. Omitted axes keep the
//! [`ScenarioMatrix::new`] defaults. [`parse`] reports every problem with
//! its 1-based line number; [`render`] is the canonical inverse
//! (parse → render → parse is byte-stable).
//!
//! # The `lb` axis: the LB-spec grammar
//!
//! Load balancers are full [`baselines::kind`] spec strings, so parameter
//! ablations — the paper's EVS-size and freezing sensitivity sweeps — are
//! a text file, not a Rust change:
//!
//! ```text
//! [evs-sweep]
//! lb = OPS{evs=64}, OPS, REPS{evs=64}, REPS
//! workload = tornado-262144B
//! ```
//!
//! A bare family name is that scheme's paper-default configuration;
//! `Family{key=value,...}` overrides individual knobs. The families and
//! their parameters (defaults in parentheses):
//!
//! * `ECMP`, `MPRDMA`, `Adaptive RoCE` — no parameters;
//! * `OPS{evs}` — EVS size (65536);
//! * `REPS{evs,buf,freeze,fto,freezeat}` — EVS size (65536), cache depth
//!   (8), freezing on/off (`on`), freezing timeout (`100us`), forced
//!   freezing instant (unset);
//! * `PLB{evs,thresh,rounds}` — EVS size (65536), ECN repath threshold
//!   (0.05), consecutive congested rounds (1);
//! * `Flowlet{gap}` — inactivity gap (half the paper RTT);
//! * `BitMap{evs,clear}` — EVS size (65536), mark aging period (twice the
//!   paper RTT);
//! * `MPTCP{subflows}` — static subflow count (8).
//!
//! Durations use `25us` / `500ns` / `77ps` syntax. Cell keys always carry
//! the *canonical* spelling ([`LbKind::spec`]): defaults are omitted,
//! parameters ordered, and the legacy `REPS-nofreeze` /
//! `REPS+freeze@Nus` forms remain canonical for the configurations they
//! have always named — so any spelling of the same configuration shares
//! one cell key, one derived seed and one cache address. Commas inside
//! `{...}` do not split the value list.
//!
//! # The `fault` axis: the fault-spec grammar
//!
//! Adversarial faults use the same discipline through
//! [`FaultSpec::parse`](crate::fault::FaultSpec):
//!
//! ```text
//! [gray-vs-flap]
//! lb    = OPS, REPS
//! fault = none, gray{p=0.01}, corrupt{p=0.001}, flap{period=10ms,duty=0.5}, unidir{n=1}
//! ```
//!
//! Families and parameters (defaults in parentheses): `gray` /
//! `corrupt{p,at,for,n}` — probability (0.01), onset (`10us`), heal
//! delay (permanent), cables (1); `flap{period,duty,at,n}` — period
//! (`100us`), up fraction (0.5), first-down instant (`10us`), cables
//! (1); `unidir{n,at,for}` — cables (1), onset (`10us`), recovery
//! (permanent). Probabilities are exact decimals (ppm resolution), and
//! the canonical label omits defaults — `fault=none` cells key exactly
//! like pre-fault-axis cells.
//!
//! # The `fidelity` axis: hybrid background modelling
//!
//! [`FidelitySpec::parse`](crate::fidelity::FidelitySpec) follows the same
//! grammar discipline:
//!
//! ```text
//! [hybrid-vs-pkt]
//! lb         = OPS, REPS
//! fidelity   = pkt, hybrid
//! background = tornado-65536B+ECMP
//! ```
//!
//! `pkt` (the default) runs everything packet-level; `hybrid` (spelled
//! `hybrid` or `hybrid{bg=fluid}`) swaps the cell's *background* workload
//! to the fluid analytic model while the foreground stays packet-accurate.
//! `fidelity=pkt` cells key exactly like pre-fidelity-axis cells.

use baselines::kind::LbKind;
use netsim::time::Time;
use transport::cc::CcKind;
use transport::config::{CoalesceConfig, CoalesceVariant};

use crate::fault::FaultSpec;
use crate::fidelity::FidelitySpec;
use crate::matrix::{reconv_label, LabeledLb, ScenarioMatrix};
use crate::spec::{FabricSpec, FailureSpec, SimProfile, WorkloadSpec};

/// A parse failure, pinned to its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number the problem was found on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SpecError {}

/// The axis names [`parse`] accepts, in canonical render order.
const AXES: [&str; 14] = [
    "fabric",
    "lb",
    "workload",
    "failure",
    "reconv",
    "track",
    "fault",
    "fidelity",
    "seed",
    "cc",
    "coalesce",
    "sim",
    "background",
    "deadline",
];

/// Splits an axis value list on top-level commas: commas inside `{...}`
/// (LB-spec parameter lists) belong to the value, not the list. Unbalanced
/// braces are left for the value parser to reject with a typed message.
fn split_values(values: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in values.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(values[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(values[start..].trim());
    out
}

/// Cross-axis checks that need the whole matrix: a `track` vantage must
/// name a ToR that exists in *every* fabric of the matrix, and the fabric
/// line may come after the track line — so this runs when the section
/// closes, reporting at the `track` line. (The matrix-level `expand`
/// assert stays as the backstop for programmatic construction.)
fn check_matrix(m: &ScenarioMatrix, seen: &[(&str, usize)]) -> Result<(), SpecError> {
    let Some(&(_, line)) = seen.iter().find(|(a, _)| *a == "track") else {
        return Ok(()); // Default vantage (ToR 0) exists in every fabric.
    };
    for fabric in &m.fabrics {
        for &tor in &m.track {
            if tor >= fabric.config.n_tors() {
                return Err(SpecError {
                    line,
                    msg: format!(
                        "tracked ToR {tor} does not exist in fabric {} ({} ToRs)",
                        fabric.label,
                        fabric.config.n_tors()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Parses a spec file into its scenario matrices.
pub fn parse(text: &str) -> Result<Vec<ScenarioMatrix>, SpecError> {
    let mut matrices: Vec<ScenarioMatrix> = Vec::new();
    // (matrix under construction, axes already set in it with their lines)
    let mut current: Option<(ScenarioMatrix, Vec<(&str, usize)>)> = None;
    let fail = |line: usize, msg: String| Err(SpecError { line, msg });

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let Some(name) = inner.strip_suffix(']') else {
                return fail(lineno, format!("unterminated section header {line:?}"));
            };
            let name = name.trim();
            if name.is_empty() {
                return fail(lineno, "empty matrix name".to_string());
            }
            if matrices.iter().any(|m| m.name == name)
                || current.as_ref().is_some_and(|(m, _)| m.name == name)
            {
                return fail(lineno, format!("duplicate matrix name {name:?}"));
            }
            if let Some((done, seen)) = current.take() {
                check_matrix(&done, &seen)?;
                matrices.push(done);
            }
            current = Some((ScenarioMatrix::new(name), Vec::new()));
            continue;
        }
        let Some((axis, values)) = line.split_once('=') else {
            return fail(
                lineno,
                format!("expected `[name]` or `axis = values`, got {line:?}"),
            );
        };
        let axis = axis.trim();
        let Some(axis) = AXES.iter().find(|a| **a == axis) else {
            return fail(
                lineno,
                format!(
                    "unknown axis {axis:?} (expected one of {})",
                    AXES.join(", ")
                ),
            );
        };
        let Some((matrix, seen)) = current.as_mut() else {
            return fail(lineno, format!("axis {axis:?} outside a [matrix] section"));
        };
        if seen.iter().any(|(a, _)| a == axis) {
            return fail(
                lineno,
                format!("duplicate axis {axis:?} in matrix {:?}", matrix.name),
            );
        }
        seen.push((axis, lineno));
        let values: Vec<&str> = split_values(values);
        if values == [""] {
            return fail(lineno, format!("axis {axis:?} has an empty value list"));
        }
        if values.iter().any(|v| v.is_empty()) {
            return fail(
                lineno,
                format!("empty value in axis {axis:?} (trailing or doubled comma?)"),
            );
        }
        if let Err(msg) = apply_axis(matrix, axis, &values) {
            return fail(lineno, msg);
        }
    }
    if let Some((done, seen)) = current.take() {
        check_matrix(&done, &seen)?;
        matrices.push(done);
    }
    Ok(matrices)
}

/// [`parse`], annotating errors with a file path (the CLI entry point).
pub fn parse_file(path: &str) -> Result<Vec<ScenarioMatrix>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading spec file {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}:{e}"))
}

fn apply_axis(matrix: &mut ScenarioMatrix, axis: &str, values: &[&str]) -> Result<(), String> {
    let unique = |labels: &[String]| -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for l in labels {
            if !seen.insert(l) {
                return Err(format!("duplicate {axis} value {l:?}"));
            }
        }
        Ok(())
    };
    let single = || -> Result<&str, String> {
        match values {
            [v] => Ok(v),
            _ => Err(format!(
                "{axis} takes exactly one value, got {}",
                values.len()
            )),
        }
    };
    match axis {
        "fabric" => {
            let parsed: Vec<FabricSpec> = values
                .iter()
                .map(|v| parse_fabric(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(|f| f.label.clone()).collect::<Vec<_>>())?;
            matrix.fabrics = parsed;
        }
        "lb" => {
            let parsed: Vec<LabeledLb> = values
                .iter()
                .map(|v| parse_lb(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(|l| l.label.clone()).collect::<Vec<_>>())?;
            matrix.lbs = parsed;
        }
        "workload" => {
            let parsed: Vec<WorkloadSpec> = values
                .iter()
                .map(|v| parse_workload(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(WorkloadSpec::label).collect::<Vec<_>>())?;
            matrix.workloads = parsed;
        }
        "failure" => {
            let parsed: Vec<FailureSpec> = values
                .iter()
                .map(|v| parse_failure(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(FailureSpec::label).collect::<Vec<_>>())?;
            matrix.failures = parsed;
        }
        "reconv" => {
            let parsed: Vec<Option<Time>> = values
                .iter()
                .map(|v| parse_reconv(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(|r| reconv_label(*r)).collect::<Vec<_>>())?;
            matrix.reconv = parsed;
        }
        "track" => {
            let parsed: Vec<u32> = values
                .iter()
                .map(|v| num(v, "tracked ToR"))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(u32::to_string).collect::<Vec<_>>())?;
            matrix.track = parsed;
        }
        "fault" => {
            let parsed: Vec<FaultSpec> = values
                .iter()
                .map(|v| FaultSpec::parse(v))
                .collect::<Result<_, _>>()?;
            // Canonical labels, so two spellings of one fault collide here.
            unique(&parsed.iter().map(FaultSpec::label).collect::<Vec<_>>())?;
            matrix.faults = parsed;
        }
        "fidelity" => {
            let parsed: Vec<FidelitySpec> = values
                .iter()
                .map(|v| FidelitySpec::parse(v))
                .collect::<Result<_, _>>()?;
            // Canonical labels: `hybrid{bg=fluid}` collides with `hybrid`.
            unique(
                &parsed
                    .iter()
                    .map(|f| f.label().to_string())
                    .collect::<Vec<_>>(),
            )?;
            matrix.fidelities = parsed;
        }
        "seed" => {
            let parsed: Vec<u32> = values
                .iter()
                .map(|v| num(v, "seed"))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(u32::to_string).collect::<Vec<_>>())?;
            matrix.seeds = parsed;
        }
        "cc" => {
            let parsed: Vec<CcKind> = values
                .iter()
                .map(|v| parse_cc(v))
                .collect::<Result<_, _>>()?;
            unique(
                &parsed
                    .iter()
                    .map(|c| c.label().to_string())
                    .collect::<Vec<_>>(),
            )?;
            matrix.ccs = parsed;
        }
        "coalesce" => {
            let parsed: Vec<(String, CoalesceConfig)> = values
                .iter()
                .map(|v| parse_coalesce(v))
                .collect::<Result<_, _>>()?;
            unique(&parsed.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>())?;
            matrix.coalesce = parsed;
        }
        "sim" => {
            matrix.sim = match single()? {
                "paper" => SimProfile::PaperDefault,
                "fpga" => SimProfile::FpgaTestbed,
                other => return Err(format!("unknown sim profile {other:?} (paper or fpga)")),
            };
        }
        "background" => {
            let v = single()?;
            matrix.background = if v == "none" {
                None
            } else {
                // Split on the FIRST '+': workload labels never contain
                // one, while lb labels can (`REPS+freeze@50us`).
                let (wl, lb) = v
                    .split_once('+')
                    .ok_or_else(|| format!("background {v:?} is not `workload+LB` or `none`"))?;
                Some((parse_workload(wl)?, parse_lb(lb)?.kind))
            };
        }
        "deadline" => {
            matrix.deadline = parse_time(single()?)?;
        }
        other => unreachable!("axis {other:?} validated against AXES"),
    }
    Ok(())
}

/// Renders matrices as a canonical spec file: every axis explicit, values
/// as their cell-key labels, matrices separated by a blank line. The exact
/// inverse of [`parse`] on its own output.
pub fn render(matrices: &[ScenarioMatrix]) -> String {
    matrices
        .iter()
        .map(render_matrix)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders one matrix block (see [`render`]).
pub fn render_matrix(m: &ScenarioMatrix) -> String {
    fn line(out: &mut String, axis: &str, values: impl IntoIterator<Item = String>) {
        out.push_str(axis);
        out.push_str(" = ");
        out.push_str(&values.into_iter().collect::<Vec<_>>().join(", "));
        out.push('\n');
    }
    let mut out = format!("[{}]\n", m.name);
    line(
        &mut out,
        "fabric",
        m.fabrics.iter().map(|f| f.label.clone()),
    );
    line(&mut out, "lb", m.lbs.iter().map(|l| l.label.clone()));
    line(&mut out, "workload", m.workloads.iter().map(|w| w.label()));
    line(&mut out, "failure", m.failures.iter().map(|f| f.label()));
    line(
        &mut out,
        "reconv",
        m.reconv.iter().map(|r| reconv_label(*r)),
    );
    line(&mut out, "track", m.track.iter().map(u32::to_string));
    line(&mut out, "fault", m.faults.iter().map(FaultSpec::label));
    line(
        &mut out,
        "fidelity",
        m.fidelities.iter().map(|f| f.label().to_string()),
    );
    line(&mut out, "seed", m.seeds.iter().map(u32::to_string));
    line(&mut out, "cc", m.ccs.iter().map(|c| c.label().to_string()));
    line(
        &mut out,
        "coalesce",
        m.coalesce.iter().map(|(l, _)| l.clone()),
    );
    line(&mut out, "sim", [m.sim.label().to_string()]);
    line(
        &mut out,
        "background",
        [match &m.background {
            None => "none".to_string(),
            // The canonical spec, not the bare family name: a
            // parameterized background LB must survive render → parse.
            Some((w, lb)) => format!("{}+{}", w.label(), lb.spec()),
        }],
    );
    line(&mut out, "deadline", [m.deadline.label()]);
    out
}

// === Value parsers (inverses of the cell-key labels) =====================

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>().map_err(|e| format!("bad {what} {s:?}: {e}"))
}

/// Parses a duration label: `25us`, `500ns` or `77ps`.
fn parse_time(s: &str) -> Result<Time, String> {
    Time::parse_label(s)
}

fn parse_reconv(s: &str) -> Result<Option<Time>, String> {
    if s == "none" {
        return Ok(None);
    }
    parse_time(s).map(Some)
}

fn parse_fabric(s: &str) -> Result<FabricSpec, String> {
    let bad =
        || format!("bad fabric {s:?} (expected 2t-kK-oO, 3t-kK-oO, ls-TxH-oO or 2t-custom-TxH-uU)");
    if let Some(rest) = s.strip_prefix("2t-custom-") {
        let (tors, rest) = rest.split_once('x').ok_or_else(bad)?;
        let (hosts, uplinks) = rest.split_once("-u").ok_or_else(bad)?;
        let (tors, hosts, uplinks) = (
            num::<u32>(tors, "ToR count")?,
            num::<u32>(hosts, "hosts per ToR")?,
            num::<u32>(uplinks, "uplinks per ToR")?,
        );
        if tors == 0 || hosts == 0 || uplinks == 0 {
            return Err(format!("fabric {s:?} has a zero dimension"));
        }
        return Ok(FabricSpec::custom(tors, hosts, uplinks));
    }
    if let Some(rest) = s.strip_prefix("ls-") {
        let (tors, rest) = rest.split_once('x').ok_or_else(bad)?;
        let (hosts, o) = rest.split_once("-o").ok_or_else(bad)?;
        let (tors, hosts, o) = (
            num::<u32>(tors, "ToR count")?,
            num::<u32>(hosts, "hosts per ToR")?,
            num::<u32>(o, "oversubscription")?,
        );
        if tors == 0 || o == 0 || hosts == 0 || !hosts.is_multiple_of(o) {
            return Err(format!(
                "fabric {s:?}: hosts per ToR must be a positive multiple of the oversubscription"
            ));
        }
        return Ok(FabricSpec::leaf_spine(tors, hosts, o));
    }
    for (prefix, three_tier) in [("2t-k", false), ("3t-k", true)] {
        if let Some(rest) = s.strip_prefix(prefix) {
            let (k, o) = rest.split_once("-o").ok_or_else(bad)?;
            let (k, o) = (num::<u32>(k, "radix")?, num::<u32>(o, "oversubscription")?);
            if k == 0 || o == 0 || !k.is_multiple_of(o + 1) || (three_tier && !k.is_multiple_of(2))
            {
                return Err(format!(
                    "fabric {s:?}: radix {k} does not support oversubscription {o}:1 \
                     (needs k divisible by {}{})",
                    o + 1,
                    if three_tier { " and even" } else { "" }
                ));
            }
            return Ok(if three_tier {
                FabricSpec::three_tier(k, o)
            } else {
                FabricSpec::two_tier(k, o)
            });
        }
    }
    Err(bad())
}

/// Parses one `lb` axis value through the typed LB-spec grammar
/// ([`LbKind::parse`]) and labels it *canonically* ([`LbKind::spec`]): any
/// spelling of a configuration — spelled-out defaults, reordered
/// parameters, braced equivalents of the legacy forms — lands on the same
/// cell key, derived seed, shard and cache address.
fn parse_lb(s: &str) -> Result<LabeledLb, String> {
    Ok(LabeledLb::plain(LbKind::parse(s)?))
}

fn parse_workload(s: &str) -> Result<WorkloadSpec, String> {
    let bytes = |v: &str| -> Result<u64, String> {
        num(
            v.strip_suffix('B')
                .ok_or_else(|| format!("size {v:?} missing its B suffix"))?,
            "byte count",
        )
    };
    if let Some(rest) = s.strip_prefix("tornado-") {
        return Ok(WorkloadSpec::Tornado {
            bytes: bytes(rest)?,
        });
    }
    if let Some(rest) = s.strip_prefix("perm-") {
        return Ok(WorkloadSpec::Permutation {
            bytes: bytes(rest)?,
        });
    }
    if let Some(rest) = s.strip_prefix("incast") {
        let (degree, b) = rest
            .split_once("to1-")
            .ok_or_else(|| format!("bad incast workload {s:?} (expected incastDto1-NB)"))?;
        return Ok(WorkloadSpec::Incast {
            degree: num(degree, "incast degree")?,
            bytes: bytes(b)?,
        });
    }
    if let Some(rest) = s.strip_prefix("ringar-") {
        return Ok(WorkloadSpec::RingAllreduce {
            bytes: bytes(rest)?,
        });
    }
    if let Some(rest) = s.strip_prefix("bflyar-") {
        return Ok(WorkloadSpec::ButterflyAllreduce {
            bytes: bytes(rest)?,
        });
    }
    if let Some(rest) = s.strip_prefix("a2a-w") {
        let (window, b) = rest
            .split_once('-')
            .ok_or_else(|| format!("bad alltoall workload {s:?} (expected a2a-wW-NB)"))?;
        return Ok(WorkloadSpec::AllToAll {
            bytes: bytes(b)?,
            window: num(window, "alltoall window")?,
        });
    }
    if let Some(rest) = s.strip_prefix("dctrace-") {
        let (pct, dur) = rest
            .split_once("pct-")
            .ok_or_else(|| format!("bad trace workload {s:?} (expected dctrace-Ppct-Tus)"))?;
        let dur = dur
            .strip_suffix("us")
            .ok_or_else(|| format!("bad trace duration in {s:?}"))?;
        return Ok(WorkloadSpec::DcTrace {
            load_pct: num(pct, "load percentage")?,
            duration: Time::from_us(num(dur, "trace duration")?),
        });
    }
    Err(format!(
        "unknown workload {s:?} (expected tornado-NB, perm-NB, incastDto1-NB, ringar-NB, \
         bflyar-NB, a2a-wW-NB or dctrace-Ppct-Tus)"
    ))
}

/// Parses the `atTus-perm` / `atTus-Dus` tail shared by failure labels.
fn parse_at_dur(rest: &str, label: &str) -> Result<(Time, Option<Time>), String> {
    let bad = || format!("bad failure {label:?} (expected ...-atTus-perm or ...-atTus-Dus)");
    let rest = rest.strip_prefix("at").ok_or_else(bad)?;
    let (at, dur) = rest.split_once("us-").ok_or_else(bad)?;
    let at = Time::from_us(num(at, "failure instant")?);
    let duration = if dur == "perm" {
        None
    } else {
        let d = dur.strip_suffix("us").ok_or_else(bad)?;
        Some(Time::from_us(num(d, "failure duration")?))
    };
    Ok((at, duration))
}

fn parse_failure(s: &str) -> Result<FailureSpec, String> {
    if s == "none" {
        return Ok(FailureSpec::None);
    }
    if let Some(rest) = s.strip_prefix("cable1-") {
        let (at, duration) = parse_at_dur(rest, s)?;
        return Ok(FailureSpec::OneCable { at, duration });
    }
    if let Some(rest) = s.strip_prefix("switch1-") {
        let (at, duration) = parse_at_dur(rest, s)?;
        return Ok(FailureSpec::OneSwitch { at, duration });
    }
    for (prefix, switches) in [("cables", false), ("switches", true)] {
        if let Some(rest) = s.strip_prefix(prefix) {
            if let Some((pct, tail)) = rest.split_once("pct-") {
                let pct = num(pct, "failure percentage")?;
                let (at, duration) = parse_at_dur(tail, s)?;
                return Ok(if switches {
                    FailureSpec::RandomSwitches { pct, at, duration }
                } else {
                    FailureSpec::RandomCables { pct, at, duration }
                });
            }
        }
    }
    if let Some(rest) = s.strip_prefix("degraded") {
        let (pct, gbps) = rest
            .split_once("pct-")
            .and_then(|(p, g)| g.strip_suffix('G').map(|g| (p, g)))
            .ok_or_else(|| format!("bad failure {s:?} (expected degradedPpct-NG)"))?;
        return Ok(FailureSpec::DegradedUplinks {
            pct: num(pct, "degraded percentage")?,
            gbps: num(gbps, "degraded rate")?,
        });
    }
    if let Some(rest) = s.strip_prefix("ber") {
        let (pm, at) = rest
            .split_once("pm-at")
            .and_then(|(p, a)| a.strip_suffix("us").map(|a| (p, a)))
            .ok_or_else(|| format!("bad failure {s:?} (expected berBpm-atTus)"))?;
        return Ok(FailureSpec::BitErrorCable {
            ber_millis: num(pm, "bit-error rate")?,
            at: Time::from_us(num(at, "onset instant")?),
        });
    }
    if let Some(rest) = s.strip_prefix("rolling") {
        let bad = || format!("bad failure {s:?} (expected rollingC-everyPus-downDus)");
        let (count, tail) = rest.split_once("-every").ok_or_else(bad)?;
        let (period, down) = tail.split_once("us-down").ok_or_else(bad)?;
        let down = down.strip_suffix("us").ok_or_else(bad)?;
        return Ok(FailureSpec::Rolling {
            count: num(count, "cable count")?,
            period: Time::from_us(num(period, "failure period")?),
            down_for: Time::from_us(num(down, "downtime")?),
        });
    }
    if let Some(rest) = s.strip_prefix("incuplinks") {
        let bad = || format!("bad failure {s:?} (expected incuplinksC-everyPus)");
        let (count, period) = rest.split_once("-every").ok_or_else(bad)?;
        let period = period.strip_suffix("us").ok_or_else(bad)?;
        return Ok(FailureSpec::IncrementalTorUplinks {
            count: num(count, "uplink count")?,
            period: Time::from_us(num(period, "failure period")?),
        });
    }
    Err(format!(
        "unknown failure {s:?} (expected none, cable1-..., switch1-..., cablesPpct-..., \
         switchesPpct-..., degradedPpct-NG, berBpm-atTus, rollingC-everyPus-downDus or \
         incuplinksC-everyPus)"
    ))
}

fn parse_cc(s: &str) -> Result<CcKind, String> {
    match s {
        "DCTCP" => Ok(CcKind::Dctcp),
        "EQDS" => Ok(CcKind::Eqds),
        "INTERNAL" => Ok(CcKind::Internal),
        other => Err(format!("unknown cc {other:?} (DCTCP, EQDS or INTERNAL)")),
    }
}

fn parse_coalesce(s: &str) -> Result<(String, CoalesceConfig), String> {
    if s == "pp" {
        return Ok(("pp".to_string(), CoalesceConfig::per_packet()));
    }
    for (prefix, variant) in [
        ("plain", CoalesceVariant::Plain),
        ("carry", CoalesceVariant::CarryEvs),
        ("reuse", CoalesceVariant::ReuseEvs),
    ] {
        if let Some(ratio) = s.strip_prefix(prefix) {
            let n: u32 = num(ratio, "coalescing ratio")?;
            if n == 0 {
                return Err(format!("coalescing ratio in {s:?} must be at least 1"));
            }
            return Ok((s.to_string(), CoalesceConfig::ratio(n, variant)));
        }
    }
    Err(format!(
        "unknown coalesce policy {s:?} (pp, plainN, carryN or reuseN)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# demo grid
[oversub-demo]
fabric = ls-4x4-o1, ls-4x4-o2
lb = OPS, REPS
workload = perm-65536B
failure = none, degraded25pct-200G
seed = 0, 1

[reconv-demo]
lb = OPS, REPS
workload = perm-131072B
failure = cable1-at8us-perm
reconv = none, 25us
";

    #[test]
    fn demo_parses_into_two_matrices() {
        let ms = parse(DEMO).expect("demo parses");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "oversub-demo");
        assert_eq!(ms[0].len(), 2 * 2 * 2 * 2);
        assert_eq!(ms[0].fabrics[1].label, "ls-4x4-o2");
        assert_eq!(ms[1].name, "reconv-demo");
        assert_eq!(ms[1].reconv, vec![None, Some(Time::from_us(25))]);
        // Omitted axes keep the builder defaults.
        assert_eq!(ms[1].fabrics[0].label, "2t-k8-o1");
        assert_eq!(ms[1].deadline, Time::from_secs(2));
        // Expansion works without panicking (labels validated at parse):
        // 2 lbs × 1 failure × 2 reconv values.
        assert_eq!(ms[1].expand().len(), 4);
    }

    #[test]
    fn render_is_parse_stable() {
        let ms = parse(DEMO).expect("demo parses");
        let canonical = render(&ms);
        let reparsed = parse(&canonical).expect("canonical text parses");
        assert_eq!(render(&reparsed), canonical, "render∘parse must be stable");
        let keys = |ms: &[ScenarioMatrix]| -> Vec<String> {
            ms.iter()
                .flat_map(|m| m.expand())
                .map(|c| c.key())
                .collect()
        };
        assert_eq!(keys(&ms), keys(&reparsed));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("[a]\nbogus = 1", 2, "unknown axis"),
            ("[a]\nlb = OPS,,REPS", 2, "empty value"),
            ("[a]\n[a]", 2, "duplicate matrix name"),
            ("[a]\n[b]\n\n[a]", 4, "duplicate matrix name"),
            ("lb = OPS", 1, "outside a [matrix]"),
            ("[a]\nlb = OPS\nlb = REPS", 3, "duplicate axis"),
            ("[a]\nlb = NOPE", 2, "unknown lb"),
            ("[]", 1, "empty matrix name"),
            ("[a\nlb = OPS", 1, "unterminated"),
            ("[a]\njust words", 2, "expected `[name]`"),
            ("[a]\nseed = 1, 1", 2, "duplicate seed value"),
            ("[a]\nsim = paper, fpga", 2, "exactly one value"),
            ("[a]\nfabric = 2t-k8-o2", 2, "does not support"),
            ("[a]\ndeadline = 5", 2, "bad duration"),
            ("[a]\nworkload = waves-1B", 2, "unknown workload"),
            ("[a]\nfailure = meteor", 2, "unknown failure"),
            ("[a]\nfault = blackhole", 2, "unknown fault family"),
            ("[a]\nfault = gray{p=2}", 2, "out of range"),
            ("[a]\nfidelity = fluid", 2, "unknown fidelity family"),
            (
                "[a]\nfidelity = hybrid{bg=packet}",
                2,
                "unknown background model",
            ),
        ] {
            let err = parse(text).expect_err(text);
            assert_eq!(err.line, line, "{text:?} -> {err}");
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn braced_lb_specs_survive_the_comma_split() {
        let ms = parse("[g]\nlb = REPS{evs=256,freeze=off}, OPS{evs=256}, OPS\n")
            .expect("braced values parse");
        let labels: Vec<&str> = ms[0].lbs.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["REPS{evs=256,freeze=off}", "OPS{evs=256}", "OPS"]
        );
        // Canonical text reparses to the identical cells.
        let canonical = render(&ms);
        assert_eq!(render(&parse(&canonical).unwrap()), canonical);
    }

    #[test]
    fn lb_values_canonicalize_to_one_cell_key_per_configuration() {
        // Three spellings of the same grid; the cell keys must be equal.
        let keys = |text: &str| -> Vec<String> {
            parse(text).expect(text)[0]
                .expand()
                .iter()
                .map(|c| c.key())
                .collect()
        };
        let canonical = keys("[g]\nlb = REPS-nofreeze, OPS\n");
        assert_eq!(
            keys("[g]\nlb = REPS{freeze=off}, OPS{evs=65536}\n"),
            canonical
        );
        assert_eq!(
            keys("[g]\nlb = REPS{ freeze=off , evs=65536 }, OPS{}\n"),
            canonical
        );
        assert!(canonical[0].contains("/lb=REPS-nofreeze/"), "{canonical:?}");
    }

    #[test]
    fn duplicate_lb_spellings_of_one_config_are_rejected() {
        let err =
            parse("[g]\nlb = REPS-nofreeze, REPS{freeze=off}\n").expect_err("aliases collide");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("duplicate lb"), "{err}");
    }

    #[test]
    fn track_axis_parses_renders_and_keys() {
        let ms = parse("[g]\nfabric = 2t-k8-o1\ntrack = 0, 3\n").expect("track axis parses");
        assert_eq!(ms[0].track, vec![0, 3]);
        let canonical = render(&ms);
        assert!(canonical.contains("track = 0, 3\n"), "{canonical}");
        assert_eq!(render(&parse(&canonical).unwrap()), canonical);
        let keys: Vec<String> = ms[0].expand().iter().map(|c| c.key()).collect();
        assert!(!keys[0].contains("tk="), "{}", keys[0]);
        assert!(keys[2].contains("/tk=3/"), "{}", keys[2]);

        for (text, line, needle) in [
            ("[g]\ntrack = 1, 1", 2, "duplicate track"),
            ("[g]\ntrack = up", 2, "bad tracked ToR"),
            // Out-of-range vantages are line-numbered spec errors (the
            // default 2t-k8-o1 fabric has 8 ToRs), whichever order the
            // fabric and track lines come in, and whether the section is
            // closed by another section or by end of file.
            ("[g]\ntrack = 8", 2, "tracked ToR 8 does not exist"),
            (
                "[g]\ntrack = 2\nfabric = 2t-custom-2x8-u4",
                2,
                "tracked ToR 2 does not exist",
            ),
            (
                "[g]\nfabric = 2t-custom-2x8-u4\ntrack = 2\n[h]",
                3,
                "tracked ToR 2 does not exist",
            ),
        ] {
            let err = parse(text).expect_err(text);
            assert_eq!(err.line, line, "{text:?} -> {err}");
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn fault_axis_parses_renders_and_keys() {
        let ms = parse("[g]\nfault = none, gray{p=0.05}, flap{period=10ms,duty=0.25}\n")
            .expect("fault axis parses");
        assert_eq!(ms[0].faults.len(), 3);
        let canonical = render(&ms);
        // `ms` canonicalizes: 10ms renders as 10000us.
        assert!(
            canonical.contains("fault = none, gray{p=0.05}, flap{period=10000us,duty=0.25}\n"),
            "{canonical}"
        );
        assert_eq!(render(&parse(&canonical).unwrap()), canonical);
        let keys: Vec<String> = ms[0].expand().iter().map(|c| c.key()).collect();
        assert!(!keys[0].contains("ft="), "{}", keys[0]);
        assert!(keys[2].contains("/ft=gray{p=0.05}/"), "{}", keys[2]);
        // Two spellings of one fault share a canonical label and collide.
        let err = parse("[g]\nfault = gray, gray{p=0.01,at=10us}\n").expect_err("aliases collide");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("duplicate fault"), "{err}");
    }

    #[test]
    fn fidelity_axis_parses_renders_and_keys() {
        let ms = parse("[g]\nfidelity = pkt, hybrid{bg=fluid}\n").expect("fidelity axis parses");
        assert_eq!(
            ms[0].fidelities,
            vec![FidelitySpec::Pkt, FidelitySpec::Hybrid]
        );
        let canonical = render(&ms);
        // `ms` canonicalizes: the default bg model collapses away.
        assert!(
            canonical.contains("fidelity = pkt, hybrid\n"),
            "{canonical}"
        );
        assert_eq!(render(&parse(&canonical).unwrap()), canonical);
        let keys: Vec<String> = ms[0].expand().iter().map(|c| c.key()).collect();
        assert!(!keys[0].contains("fi="), "{}", keys[0]);
        let hybrid = keys.iter().filter(|k| k.contains("/fi=hybrid/")).count();
        assert_eq!(hybrid, keys.len() / 2, "{keys:?}");
        // Two spellings of one fidelity share a canonical label and collide.
        let err = parse("[g]\nfidelity = hybrid, hybrid{bg=fluid}\n").expect_err("aliases collide");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("duplicate fidelity"), "{err}");
    }

    #[test]
    fn background_lb_may_contain_a_plus() {
        let ms = parse("[g]\nbackground = perm-1024B+REPS+freeze@50us\n").expect("parses");
        let (wl, lb) = ms[0].background.as_ref().expect("background set");
        assert_eq!(wl.label(), "perm-1024B");
        assert_eq!(lb.label(), "REPS");
        assert!(
            matches!(lb, baselines::kind::LbKind::Reps(cfg) if cfg.force_freezing_at.is_some()),
            "freeze suffix must reach the config"
        );
    }

    #[test]
    fn every_label_form_parses_back() {
        // One value of every supported shape, exercised through a single
        // matrix so label rendering and parsing stay inverses.
        let text = "\
[kitchen-sink]
fabric = 2t-k8-o1, 3t-k6-o2, 2t-custom-2x8-u4, ls-8x8-o4
lb = ECMP, OPS, REPS, PLB, MPRDMA, MPTCP, Flowlet, BitMap, Adaptive RoCE, REPS-nofreeze, REPS+freeze@50us, REPS{evs=256,buf=16,fto=50us}, OPS{evs=64}, PLB{thresh=0.1,rounds=3}, Flowlet{gap=80us}, BitMap{evs=1024,clear=50us}, MPTCP{subflows=4}
workload = tornado-1024B, perm-2048B, incast8to1-4096B, ringar-8192B, bflyar-16384B, a2a-w4-512B, dctrace-30pct-100us
failure = none, cable1-at8us-perm, switch1-at8us-30us, cables5pct-at10us-perm, switches5pct-at10us-20us, degraded3pct-200G, ber10pm-at5us, rolling4-every40us-down80us, incuplinks3-every50us
reconv = none, 10us, 500ns, 77ps
track = 0, 1
fault = none, gray{p=0.02,for=100us}, corrupt{p=0.001,n=2}, flap{period=40us,duty=0.5,at=20us}, unidir{for=200us}
fidelity = pkt, hybrid
seed = 0, 3, 7
cc = DCTCP, EQDS, INTERNAL
coalesce = pp, plain4, carry16, reuse16
sim = fpga
background = tornado-8192B+REPS{evs=128,freeze=off}
deadline = 5000000us
";
        let ms = parse(text).expect("kitchen sink parses");
        let canonical = render(&ms);
        let reparsed = parse(&canonical).expect("canonical reparses");
        assert_eq!(render(&reparsed), canonical);
        // Spot-check a few materializations.
        let m = &ms[0];
        assert!(matches!(m.sim, SimProfile::FpgaTestbed));
        assert_eq!(m.deadline, Time::from_secs(5));
        assert_eq!(m.fabrics[3].config.tor_uplinks, 2);
        assert_eq!(m.lbs[10].label, "REPS+freeze@50us");
        assert_eq!(m.lbs[11].label, "REPS{evs=256,buf=16,fto=50us}");
        assert_eq!(m.track, vec![0, 1]);
        let (_, bg_lb) = m.background.as_ref().expect("background set");
        assert!(
            matches!(bg_lb, baselines::kind::LbKind::Reps(cfg)
                if cfg.evs_size == 128 && !cfg.freezing_enabled),
            "parameterized background must reach the config: {bg_lb:?}"
        );
    }
}
