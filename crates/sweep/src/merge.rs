//! Union of sharded sweep outputs (`repsbench merge OUT IN...`).
//!
//! Each input is a result JSONL file produced by `repsbench run` (usually
//! one per `--shard i/n`). Merging validates that every line is a
//! *canonical* record (so the output stays inside the byte-determinism
//! contract), that no cell key appears twice (shards must be disjoint),
//! and re-sorts the union by cell key — producing bytes identical to the
//! unsharded run over the same cells. The parsed records ride along so the
//! caller can re-render the cross-seed aggregate tables.

use std::collections::BTreeMap;

use crate::matrix::CellResult;
use crate::sink::{jsonl_record, parse_record};

/// A validated, key-sorted union of shard outputs.
#[derive(Debug)]
pub struct MergedSweep {
    /// The merged JSONL lines (no trailing newlines), sorted by cell key —
    /// byte-identical to an unsharded run over the same cells.
    pub lines: Vec<String>,
    /// The parsed records, in the same order as `lines`.
    pub results: Vec<CellResult>,
}

impl MergedSweep {
    /// Renders the merged file contents (one trailing newline per line,
    /// matching `repsbench run --out`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Merges shard outputs given as `(input name, file contents)` pairs.
/// Input names only label error messages (file paths on the CLI).
///
/// Errors on: unparsable or non-canonical lines (a record whose bytes this
/// crate would not emit — e.g. hand-edited whitespace — would silently
/// break the byte-identity contract), and duplicate cell keys within or
/// across inputs (shards of one sweep are disjoint by construction, so a
/// duplicate means overlapping shard specs or a repeated input file).
pub fn merge_contents(inputs: &[(String, String)]) -> Result<MergedSweep, String> {
    let mut entries: Vec<(String, CellResult)> = Vec::new();
    let mut first_seen: BTreeMap<String, String> = BTreeMap::new();
    for (name, content) in inputs {
        for (lineno, line) in content.lines().enumerate() {
            let at = format!("{name}:{}", lineno + 1);
            if line.is_empty() {
                return Err(format!("{at}: blank line in result JSONL"));
            }
            let record = parse_record(line).map_err(|e| format!("{at}: {e}"))?;
            let canonical = jsonl_record(&record);
            if canonical != line {
                return Err(format!(
                    "{at}: non-canonical record for cell {:?} (re-rendering changes bytes; \
                     was this file edited outside repsbench?)",
                    record.key
                ));
            }
            if let Some(prev) = first_seen.insert(record.key.clone(), at.clone()) {
                return Err(format!(
                    "{at}: duplicate cell key {:?} (first seen at {prev}); \
                     shards must be disjoint",
                    record.key
                ));
            }
            entries.push((line.to_string(), record));
        }
    }
    entries.sort_by(|a, b| a.1.key.cmp(&b.1.key));
    let (lines, results) = entries.into_iter().unzip();
    Ok(MergedSweep { lines, results })
}

/// Reads and merges shard files from disk.
pub fn merge_files(paths: &[String]) -> Result<MergedSweep, String> {
    let mut inputs = Vec::with_capacity(paths.len());
    for p in paths {
        let content = std::fs::read_to_string(p).map_err(|e| format!("reading shard {p}: {e}"))?;
        inputs.push((p.clone(), content));
    }
    merge_contents(&inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;
    use crate::runner::run_cells;
    use crate::sink::to_jsonl;
    use crate::spec::WorkloadSpec;

    fn sweep_jsonl(seeds: u32) -> String {
        let m = ScenarioMatrix::new("merge-test")
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .seeds(seeds);
        to_jsonl(&run_cells(&m.expand(), 2))
    }

    #[test]
    fn merge_of_split_halves_restores_the_original_bytes() {
        let full = sweep_jsonl(4);
        let lines: Vec<&str> = full.lines().collect();
        // Interleave lines into two "shards" in scrambled order.
        let shard = |parity: usize| -> String {
            let mut picked: Vec<&str> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == parity)
                .map(|(_, l)| *l)
                .collect();
            picked.reverse(); // merge must not rely on input order
            picked.join("\n") + "\n"
        };
        let merged = merge_contents(&[
            ("a.jsonl".to_string(), shard(1)),
            ("b.jsonl".to_string(), shard(0)),
        ])
        .expect("valid shards merge");
        assert_eq!(merged.to_jsonl(), full);
        assert_eq!(merged.results.len(), lines.len());
        assert!(merged.results.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn duplicate_keys_are_rejected_with_both_locations() {
        let full = sweep_jsonl(1);
        let err = merge_contents(&[
            ("x.jsonl".to_string(), full.clone()),
            ("y.jsonl".to_string(), full),
        ])
        .expect_err("overlap must be rejected");
        assert!(err.contains("duplicate cell key"), "{err}");
        assert!(
            err.contains("x.jsonl:1") && err.contains("y.jsonl:1"),
            "{err}"
        );
    }

    #[test]
    fn non_canonical_and_malformed_lines_are_rejected() {
        let full = sweep_jsonl(1);
        let line = full.lines().next().unwrap();
        // Same JSON, different bytes: added whitespace.
        let padded = line.replace("\":", "\": ");
        let err = merge_contents(&[("p.jsonl".to_string(), format!("{padded}\n"))])
            .expect_err("non-canonical bytes rejected");
        assert!(err.contains("non-canonical"), "{err}");
        let err = merge_contents(&[("g.jsonl".to_string(), "garbage\n".to_string())])
            .expect_err("garbage rejected");
        assert!(err.contains("g.jsonl:1"), "{err}");
        let err = merge_contents(&[("b.jsonl".to_string(), format!("{line}\n\n{line}\n"))])
            .expect_err("blank line rejected");
        assert!(err.contains("blank line"), "{err}");
    }
}
