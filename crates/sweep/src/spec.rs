//! Declarative axis values for a [`crate::matrix::ScenarioMatrix`].
//!
//! Each axis value is a pure *description* carrying a stable label; it is
//! only materialized into a concrete [`Workload`] / [`FailurePlan`] /
//! topology inside one cell, with randomness drawn from the cell's derived
//! seed. Labels feed the cell key, so they must be unique within an axis
//! and stable across releases (they determine per-cell RNG seeds).

use netsim::config::SimConfig;
use netsim::failures::{Failure, FailurePlan};
use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use workloads::spec::Workload;
use workloads::traces::SizeCdf;
use workloads::{collectives, patterns, traces};

/// A labeled fabric shape.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Stable label used in cell keys (e.g. `2t-k8-o1`).
    pub label: String,
    /// The topology shape.
    pub config: FatTreeConfig,
}

impl FabricSpec {
    /// A full 2-tier fat tree from radix `k`, oversubscription `o:1`.
    pub fn two_tier(k: u32, oversubscription: u32) -> FabricSpec {
        FabricSpec {
            label: format!("2t-k{k}-o{oversubscription}"),
            config: FatTreeConfig::two_tier(k, oversubscription),
        }
    }

    /// A full 3-tier fat tree from radix `k`, oversubscription `o:1`.
    pub fn three_tier(k: u32, oversubscription: u32) -> FabricSpec {
        FabricSpec {
            label: format!("3t-k{k}-o{oversubscription}"),
            config: FatTreeConfig::three_tier(k, oversubscription),
        }
    }

    /// An irregular 2-tier fabric (the FPGA-testbed shapes).
    pub fn custom(tors: u32, hosts_per_tor: u32, tor_uplinks: u32) -> FabricSpec {
        FabricSpec {
            label: format!("2t-custom-{tors}x{hosts_per_tor}-u{tor_uplinks}"),
            config: FatTreeConfig::two_tier_custom(tors, hosts_per_tor, tor_uplinks),
        }
    }

    /// A 2-tier leaf/spine fabric with an explicit oversubscription ratio:
    /// `tors` ToRs of `hosts_per_tor` hosts each and `hosts_per_tor / o`
    /// uplinks per ToR. Unlike [`FabricSpec::two_tier`], which derives the
    /// shape from a switch radix (and so cannot express `o = 2` and `o = 4`
    /// at the same radix), this keeps the host count fixed while the
    /// uplink capacity shrinks — the oversubscription sweeps' axis.
    ///
    /// # Panics
    ///
    /// Panics unless `hosts_per_tor` is a positive multiple of `o`.
    pub fn leaf_spine(tors: u32, hosts_per_tor: u32, o: u32) -> FabricSpec {
        assert!(o >= 1, "oversubscription must be at least 1:1");
        assert!(
            hosts_per_tor >= o && hosts_per_tor.is_multiple_of(o),
            "hosts_per_tor {hosts_per_tor} not divisible by oversubscription {o}"
        );
        FabricSpec {
            label: format!("ls-{tors}x{hosts_per_tor}-o{o}"),
            config: FatTreeConfig::two_tier_custom(tors, hosts_per_tor, hosts_per_tor / o),
        }
    }
}

/// Which [`SimConfig`] profile a matrix runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimProfile {
    /// 400 Gbps paper-default fabric.
    #[default]
    PaperDefault,
    /// The §4.4 FPGA-testbed profile (100 Gbps NICs, 8 KiB MTU).
    FpgaTestbed,
}

impl SimProfile {
    /// Stable label used in cell keys.
    pub fn label(&self) -> &'static str {
        match self {
            SimProfile::PaperDefault => "paper",
            SimProfile::FpgaTestbed => "fpga",
        }
    }

    /// Materializes the profile.
    pub fn config(&self) -> SimConfig {
        match self {
            SimProfile::PaperDefault => SimConfig::paper_default(),
            SimProfile::FpgaTestbed => SimConfig::fpga_testbed(),
        }
    }
}

/// A workload description, materialized per cell.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Tornado: host `i` → twin `(i + n/2) % n`.
    Tornado {
        /// Bytes per flow.
        bytes: u64,
    },
    /// Seeded random derangement, every host sends once.
    Permutation {
        /// Bytes per flow.
        bytes: u64,
    },
    /// `degree`:1 incast onto host 0.
    Incast {
        /// Number of concurrent senders.
        degree: u32,
        /// Bytes per flow.
        bytes: u64,
    },
    /// Ring AllReduce of a `bytes` buffer.
    RingAllreduce {
        /// Buffer bytes.
        bytes: u64,
    },
    /// Butterfly (halving/doubling) AllReduce of a `bytes` buffer.
    ButterflyAllreduce {
        /// Buffer bytes.
        bytes: u64,
    },
    /// Windowed AllToAll.
    AllToAll {
        /// Bytes per pairwise message.
        bytes: u64,
        /// Concurrent sends per host.
        window: u32,
    },
    /// Poisson arrivals from the WebSearch size CDF at a target load.
    DcTrace {
        /// Offered load as a percentage of host line rate.
        load_pct: u32,
        /// Arrival window.
        duration: Time,
    },
}

impl WorkloadSpec {
    /// Stable label used in cell keys.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Tornado { bytes } => format!("tornado-{bytes}B"),
            WorkloadSpec::Permutation { bytes } => format!("perm-{bytes}B"),
            WorkloadSpec::Incast { degree, bytes } => format!("incast{degree}to1-{bytes}B"),
            WorkloadSpec::RingAllreduce { bytes } => format!("ringar-{bytes}B"),
            WorkloadSpec::ButterflyAllreduce { bytes } => format!("bflyar-{bytes}B"),
            WorkloadSpec::AllToAll { bytes, window } => format!("a2a-w{window}-{bytes}B"),
            WorkloadSpec::DcTrace { load_pct, duration } => {
                format!("dctrace-{load_pct}pct-{}us", duration.as_ps() / 1_000_000)
            }
        }
    }

    /// Materializes the workload for an `n_hosts` fabric; all randomness is
    /// drawn from `rng` (derived from the cell seed by the caller).
    pub fn build(&self, n_hosts: u32, link_bps: u64, rng: &mut Rng64) -> Workload {
        match self {
            WorkloadSpec::Tornado { bytes } => patterns::tornado(n_hosts, *bytes),
            WorkloadSpec::Permutation { bytes } => patterns::permutation(n_hosts, *bytes, rng),
            // No silent clamping: the label (and with it the derived seed)
            // advertises `degree`, so an oversized degree must fail loudly
            // rather than masquerade as a different scenario.
            WorkloadSpec::Incast { degree, bytes } => {
                patterns::incast(n_hosts, *degree, HostId(0), *bytes)
            }
            WorkloadSpec::RingAllreduce { bytes } => collectives::ring_allreduce(n_hosts, *bytes),
            WorkloadSpec::ButterflyAllreduce { bytes } => {
                let n = if n_hosts.is_power_of_two() {
                    n_hosts
                } else {
                    n_hosts.next_power_of_two() / 2
                };
                collectives::butterfly_allreduce(n.max(2), *bytes)
            }
            WorkloadSpec::AllToAll { bytes, window } => {
                collectives::alltoall(n_hosts, *bytes, *window)
            }
            WorkloadSpec::DcTrace { load_pct, duration } => traces::poisson_trace(
                n_hosts,
                *load_pct as f64 / 100.0,
                *duration,
                link_bps,
                &SizeCdf::websearch(),
                rng,
            ),
        }
    }
}

/// A failure-plan description, materialized per cell against the topology.
#[derive(Debug, Clone)]
pub enum FailureSpec {
    /// Healthy network.
    None,
    /// The first cable of the fabric fails at `at` (optionally recovering).
    OneCable {
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// The first T1 switch fails at `at`.
    OneSwitch {
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A random `pct`% of switch-to-switch cables fail at `at`.
    RandomCables {
        /// Percentage of cables (0–100).
        pct: u32,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A random `pct`% of T1 switches fail at `at`.
    RandomSwitches {
        /// Percentage of T1 switches (0–100).
        pct: u32,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A random `pct`% of ToR uplink cables degrade to `gbps` from t=0
    /// (the paper's asymmetric-network scenarios).
    DegradedUplinks {
        /// Percentage of ToR uplink cables (0–100).
        pct: u32,
        /// Degraded rate in Gbps.
        gbps: u32,
    },
    /// One cable develops a `ber_millis`/1000 per-packet error rate at `at`.
    BitErrorCable {
        /// Per-mille packet corruption probability.
        ber_millis: u32,
        /// Onset instant.
        at: Time,
    },
    /// Rolling maintenance: `count` cables fail one after another, `period`
    /// apart, each staying down for `down_for` (a new scenario beyond the
    /// paper: the fabric is never fully healthy but never loses more than a
    /// few cables at once).
    Rolling {
        /// How many cables the wave touches.
        count: u32,
        /// Gap between consecutive failures.
        period: Time,
        /// Downtime of each cable.
        down_for: Time,
    },
    /// Incremental permanent loss of `count` uplinks of ToR 0, `period`
    /// apart (Fig. 22).
    IncrementalTorUplinks {
        /// How many uplinks fail.
        count: u32,
        /// Gap between consecutive failures.
        period: Time,
    },
}

impl FailureSpec {
    /// Stable label used in cell keys.
    pub fn label(&self) -> String {
        fn dur(d: &Option<Time>) -> String {
            match d {
                None => "perm".to_string(),
                Some(t) => format!("{}us", t.as_ps() / 1_000_000),
            }
        }
        match self {
            FailureSpec::None => "none".to_string(),
            FailureSpec::OneCable { at, duration } => {
                format!("cable1-at{}us-{}", at.as_ps() / 1_000_000, dur(duration))
            }
            FailureSpec::OneSwitch { at, duration } => {
                format!("switch1-at{}us-{}", at.as_ps() / 1_000_000, dur(duration))
            }
            FailureSpec::RandomCables { pct, at, duration } => {
                format!(
                    "cables{pct}pct-at{}us-{}",
                    at.as_ps() / 1_000_000,
                    dur(duration)
                )
            }
            FailureSpec::RandomSwitches { pct, at, duration } => {
                format!(
                    "switches{pct}pct-at{}us-{}",
                    at.as_ps() / 1_000_000,
                    dur(duration)
                )
            }
            FailureSpec::DegradedUplinks { pct, gbps } => {
                format!("degraded{pct}pct-{gbps}G")
            }
            FailureSpec::BitErrorCable { ber_millis, at } => {
                format!("ber{ber_millis}pm-at{}us", at.as_ps() / 1_000_000)
            }
            FailureSpec::Rolling {
                count,
                period,
                down_for,
            } => format!(
                "rolling{count}-every{}us-down{}us",
                period.as_ps() / 1_000_000,
                down_for.as_ps() / 1_000_000
            ),
            FailureSpec::IncrementalTorUplinks { count, period } => {
                format!("incuplinks{count}-every{}us", period.as_ps() / 1_000_000)
            }
        }
    }

    /// Materializes the plan against `fabric`; random choices are seeded by
    /// `seed` (derived from the cell key by the caller), so the same cell
    /// always fails the same cables.
    pub fn build(&self, fabric: &FatTreeConfig, topo_seed: u64, seed: u64) -> FailurePlan {
        if matches!(self, FailureSpec::None) {
            return FailurePlan::none();
        }
        let topo = Topology::build(fabric.clone(), topo_seed);
        let mut rng = Rng64::new(seed);
        match self {
            FailureSpec::None => unreachable!("handled by the early return above"),
            FailureSpec::OneCable { at, duration } => FailurePlan::none().with(Failure::Cable {
                pair: topo.cable_pairs()[0],
                at: *at,
                duration: *duration,
            }),
            FailureSpec::OneSwitch { at, duration } => FailurePlan::none().with(Failure::Switch {
                sw: topo.t1_switches()[0],
                at: *at,
                duration: *duration,
            }),
            FailureSpec::RandomCables { pct, at, duration } => FailurePlan::random_cables(
                &topo.cable_pairs(),
                *pct as f64 / 100.0,
                *at,
                *duration,
                &mut rng,
            ),
            FailureSpec::RandomSwitches { pct, at, duration } => FailurePlan::random_switches(
                &topo.t1_switches(),
                *pct as f64 / 100.0,
                *at,
                *duration,
                &mut rng,
            ),
            FailureSpec::DegradedUplinks { pct, gbps } => {
                let mut pairs = Vec::new();
                for tor in topo.t0_switches() {
                    pairs.extend(topo.tor_uplink_pairs(tor));
                }
                FailurePlan::degrade_random_cables(
                    &pairs,
                    *pct as f64 / 100.0,
                    *gbps as u64 * 1_000_000_000,
                    &mut rng,
                )
            }
            FailureSpec::BitErrorCable { ber_millis, at } => {
                FailurePlan::none().with(Failure::BitError {
                    pair: topo.cable_pairs()[0],
                    at: *at,
                    p: *ber_millis as f64 / 1000.0,
                    duration: None,
                })
            }
            FailureSpec::Rolling {
                count,
                period,
                down_for,
            } => {
                let cables = topo.cable_pairs();
                let mut plan = FailurePlan::none();
                for (i, &pair) in cables.iter().take(*count as usize).enumerate() {
                    plan = plan.with(Failure::Cable {
                        pair,
                        at: *period * (i as u64 + 1),
                        duration: Some(*down_for),
                    });
                }
                plan
            }
            FailureSpec::IncrementalTorUplinks { count, period } => {
                let pairs = topo.tor_uplink_pairs(topo.t0_switches()[0]);
                let mut plan = FailurePlan::none();
                for (i, pair) in pairs.iter().take(*count as usize).enumerate() {
                    plan = plan.with(Failure::Cable {
                        pair: *pair,
                        at: *period * (i as u64 + 1),
                        duration: None,
                    });
                }
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_labels_are_stable() {
        assert_eq!(FabricSpec::two_tier(8, 1).label, "2t-k8-o1");
        assert_eq!(FabricSpec::three_tier(4, 1).label, "3t-k4-o1");
        assert_eq!(FabricSpec::custom(2, 8, 4).label, "2t-custom-2x8-u4");
        assert_eq!(FabricSpec::leaf_spine(8, 8, 2).label, "ls-8x8-o2");
    }

    #[test]
    fn leaf_spine_scales_uplinks_not_hosts() {
        for (o, uplinks) in [(1, 8), (2, 4), (4, 2)] {
            let f = FabricSpec::leaf_spine(8, 8, o);
            assert_eq!(f.config.n_hosts(), 64, "o={o}");
            assert_eq!(f.config.tor_uplinks, uplinks, "o={o}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn leaf_spine_rejects_fractional_uplink_counts() {
        FabricSpec::leaf_spine(8, 8, 3);
    }

    #[test]
    fn workload_build_matches_label_shape() {
        let mut rng = Rng64::new(1);
        let spec = WorkloadSpec::Permutation { bytes: 1 << 16 };
        let w = spec.build(32, 400_000_000_000, &mut rng);
        assert_eq!(w.len(), 32);
        assert!(w.validate(32).is_ok());
        assert_eq!(spec.label(), "perm-65536B");
    }

    #[test]
    #[should_panic(expected = "incast degree")]
    fn oversized_incast_degree_fails_loudly() {
        // The label advertises the requested degree, so a fabric too small
        // for it must panic instead of silently building something else.
        let mut rng = Rng64::new(1);
        let spec = WorkloadSpec::Incast {
            degree: 64,
            bytes: 1024,
        };
        let _ = spec.build(8, 400_000_000_000, &mut rng);
    }

    #[test]
    fn failure_build_is_deterministic_in_seed() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        let spec = FailureSpec::RandomCables {
            pct: 25,
            at: Time::from_us(5),
            duration: None,
        };
        let a = spec.build(&fabric, 7, 99);
        let b = spec.build(&fabric, 7, 99);
        assert_eq!(a.len(), b.len());
        let pairs = |p: &FailurePlan| -> Vec<String> {
            p.failures.iter().map(|f| format!("{f:?}")).collect()
        };
        assert_eq!(pairs(&a), pairs(&b));
    }

    #[test]
    fn rolling_failures_are_staggered_and_recover() {
        let fabric = FatTreeConfig::two_tier(8, 1);
        let spec = FailureSpec::Rolling {
            count: 3,
            period: Time::from_us(50),
            down_for: Time::from_us(30),
        };
        let plan = spec.build(&fabric, 1, 1);
        assert_eq!(plan.len(), 3);
        for (i, f) in plan.failures.iter().enumerate() {
            let Failure::Cable { at, duration, .. } = f else {
                panic!("expected cable failures");
            };
            assert_eq!(*at, Time::from_us(50) * (i as u64 + 1));
            assert_eq!(*duration, Some(Time::from_us(30)));
        }
    }
}
