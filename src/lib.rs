//! Umbrella crate for the REPS reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users need a single dependency:
//!
//! * [`reps`] — the REPS algorithm (the paper's contribution),
//! * [`baselines`] — every load balancer the paper compares against,
//! * [`netsim`] — the packet-level datacenter simulator,
//! * [`transport`] — the out-of-order transport and congestion control,
//! * [`workloads`] — synthetic patterns, trace CDFs and AI collectives,
//! * [`ballsbins`] — the §5 theoretical models,
//! * [`harness`] — the experiment runner.
//!
//! # Examples
//!
//! ```
//! use reps_repro::prelude::*;
//!
//! // Compare REPS with OPS on a small tornado workload.
//! let fabric = FatTreeConfig::two_tier(8, 1);
//! let workload = tornado(fabric.n_hosts(), 256 << 10);
//! let exp = Experiment::new("demo", fabric, LbKind::Reps(RepsConfig::default()), workload);
//! let result = exp.run();
//! assert!(result.summary.completed);
//! ```

pub use ballsbins;
pub use baselines;
pub use harness;
pub use netsim;
pub use reps;
pub use transport;
pub use workloads;

/// Convenient re-exports for examples and quick experiments.
pub mod prelude {
    pub use baselines::kind::LbKind;
    pub use harness::experiment::{Experiment, RunResult, Summary, TrackLinks};
    pub use harness::Scale;
    pub use netsim::config::SimConfig;
    pub use netsim::failures::{Failure, FailurePlan};
    pub use netsim::ids::{FlowId, HostId, SwitchId};
    pub use netsim::time::Time;
    pub use netsim::topology::{FatTreeConfig, Topology};
    pub use reps::reps::{Reps, RepsConfig};
    pub use transport::cc::CcKind;
    pub use transport::config::{CoalesceConfig, CoalesceVariant};
    pub use workloads::collectives::{alltoall, butterfly_allreduce, ring_allreduce};
    pub use workloads::patterns::{incast, permutation, tornado};
    pub use workloads::traces::{poisson_trace, SizeCdf};
}
