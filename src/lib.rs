//! Umbrella crate for the REPS reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users need a single dependency:
//!
//! * [`reps`] — the REPS algorithm (the paper's contribution),
//! * [`baselines`] — every load balancer the paper compares against,
//! * [`netsim`] — the packet-level datacenter simulator,
//! * [`transport`] — the out-of-order transport and congestion control,
//! * [`workloads`] — synthetic patterns, trace CDFs and AI collectives,
//! * [`ballsbins`] — the §5 theoretical models,
//! * [`harness`] — the experiment runner,
//! * [`sweep`] — the deterministic parallel scenario-sweep engine and the
//!   `repsbench` CLI.
//!
//! # Examples
//!
//! ```
//! use reps_repro::prelude::*;
//!
//! // Compare REPS with OPS on a small tornado workload.
//! let fabric = FatTreeConfig::two_tier(8, 1);
//! let workload = tornado(fabric.n_hosts(), 256 << 10);
//! let exp = Experiment::new("demo", fabric, LbKind::Reps(RepsConfig::default()), workload);
//! let result = exp.run();
//! assert!(result.summary.completed);
//! ```
//!
//! Or declare a whole scenario grid and run it in parallel:
//!
//! ```
//! use reps_repro::prelude::*;
//!
//! let matrix = ScenarioMatrix::new("demo")
//!     .workloads([WorkloadSpec::Tornado { bytes: 64 << 10 }])
//!     .seeds(2);
//! let results = reps_repro::sweep::run_cells(&matrix.expand(), 4);
//! assert!(results.iter().all(|r| r.summary.completed));
//! ```
//!
//! # Running the evaluation
//!
//! Two front ends cover the paper's evaluation:
//!
//! * `cargo run --release --bin run_all -- [GLOB]` prints every figure's
//!   tables in paper order (the per-figure binaries still exist for single
//!   figures). Lineup experiments execute on the sweep engine's
//!   work-stealing pool; set `REPS_THREADS` to pin the worker count.
//! * `cargo run --release --bin repsbench -- run --filter 'fig0*'
//!   --threads 8 --out results.jsonl` runs declarative scenario sweeps and
//!   emits one JSON Lines record per cell plus cross-seed aggregate
//!   tables; `repsbench list` shows every preset. Output is
//!   byte-identical for any `--threads` value.
//!
//! Both honour `REPS_SCALE` (case-insensitive): `quick` (default) runs
//! 32–128-node fabrics with scaled-down messages in minutes; `full` uses
//! the paper's parameters where feasible.

pub use ballsbins;
pub use baselines;
pub use harness;
pub use netsim;
pub use reps;
pub use sweep;
pub use transport;
pub use workloads;

/// Convenient re-exports for examples and quick experiments.
pub mod prelude {
    pub use baselines::kind::LbKind;
    pub use harness::experiment::{Experiment, RunResult, Summary, TrackLinks};
    pub use harness::Scale;
    pub use netsim::config::SimConfig;
    pub use netsim::failures::{Failure, FailurePlan};
    pub use netsim::ids::{FlowId, HostId, SwitchId};
    pub use netsim::time::Time;
    pub use netsim::topology::{FatTreeConfig, Topology};
    pub use reps::reps::{Reps, RepsConfig};
    pub use sweep::{FabricSpec, FailureSpec, LabeledLb, ScenarioMatrix, SimProfile, WorkloadSpec};
    pub use transport::cc::CcKind;
    pub use transport::config::{CoalesceConfig, CoalesceVariant};
    pub use workloads::collectives::{alltoall, butterfly_allreduce, ring_allreduce};
    pub use workloads::patterns::{incast, permutation, tornado};
    pub use workloads::traces::{poisson_trace, SizeCdf};
}
