//! Failure recovery: a cable dies mid-transfer; REPS freezes onto cached
//! healthy paths while OPS keeps spraying into the black hole.
//!
//! This is the paper's §3.2 story (and Fig. 7/11) in one runnable scenario.
//!
//! Run with: `cargo run --release --example failure_recovery`

use reps_repro::prelude::*;

fn main() {
    let fabric = FatTreeConfig::two_tier(16, 1); // 128 hosts, 8 uplinks/ToR.
    let n = fabric.n_hosts();
    let bytes = 8 << 20;

    // One of ToR 0's eight uplink cables dies 30 us into the run and never
    // recovers — the fabric's routing does not reconverge within the run,
    // the paper's pessimistic (and realistic, §3.2) assumption.
    let topo = Topology::build(fabric.clone(), 13);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];

    println!("scenario: {n}-host fabric, ToR0 uplink dies at t=30us, permanent");
    println!("workload: 8 MiB permutation\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10}",
        "LB", "max FCT(us)", "blackhole", "retx", "timeouts"
    );
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let mut rng = netsim::rng::Rng64::new(13);
        let workload = permutation(n, bytes, &mut rng);
        let mut exp = Experiment::new("failure", fabric.clone(), lb, workload);
        exp.failures = FailurePlan::none().with(Failure::Cable {
            pair,
            at: Time::from_us(30),
            duration: None,
        });
        exp.seed = 13;
        exp.deadline = Time::from_secs(5);
        let s = exp.run().summary;
        assert!(s.completed);
        println!(
            "{:<8} {:>12.1} {:>10} {:>10} {:>10}",
            s.lb,
            s.max_fct.as_us_f64(),
            s.counters.drops_link_down,
            s.counters.retransmissions,
            s.counters.timeouts,
        );
    }
    println!("\nREPS re-routes within ~an RTO of the failure; OPS pays for every spray.");
}
