//! AI collectives: ring AllReduce and windowed AllToAll across load
//! balancers — the §4.2 "distributed training" workloads.
//!
//! Ring AllReduce is dependency-chained (no congestion can accumulate, so
//! all balancers tie); AllToAll stresses the fabric and separates them.
//!
//! Run with: `cargo run --release --example ai_collective`

use reps_repro::prelude::*;

fn main() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let n = fabric.n_hosts();

    let cases = [
        ("Ring AllReduce 16MiB", ring_allreduce(n, 16 << 20)),
        (
            "Butterfly AllReduce 16MiB",
            butterfly_allreduce(n, 16 << 20),
        ),
        ("AllToAll 64KiB (window 8)", alltoall(n, 64 << 10, 8)),
    ];
    let lineup = [
        LbKind::Ecmp,
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::MptcpLike { subflows: 8 },
        LbKind::Reps(RepsConfig::default()),
    ];

    for (name, workload) in &cases {
        println!("## {name} ({} messages)", workload.len());
        for lb in &lineup {
            let mut exp = Experiment::new(*name, fabric.clone(), lb.clone(), workload.clone());
            exp.seed = 21;
            exp.deadline = Time::from_secs(5);
            let s = exp.run().summary;
            assert!(s.completed, "{name} under {} did not finish", s.lb);
            println!(
                "   {:<8} runtime {:>9.1} us   (drops {})",
                s.lb,
                s.makespan.as_us_f64(),
                s.counters.total_drops()
            );
        }
        println!();
    }
    println!("Ring ties by construction; AllToAll rewards adaptive spraying.");
}
