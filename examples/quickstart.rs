//! Quickstart: simulate REPS against OPS and ECMP on a permutation workload.
//!
//! Builds the paper's default 2-tier 400 Gbps fabric, runs the same
//! 2 MiB-per-host permutation under three load balancers, and prints the
//! completion times — the smallest possible version of Fig. 3.
//!
//! Run with: `cargo run --release --example quickstart`

use reps_repro::prelude::*;

fn main() {
    // A 32-host, radix-8, non-oversubscribed 2-tier fat tree.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let n = fabric.n_hosts();
    println!(
        "fabric: {n} hosts, {} ToRs, {} spines",
        fabric.n_tors(),
        fabric.n_t1()
    );

    let mut rng = netsim::rng::Rng64::new(7);
    let workload = permutation(n, 2 << 20, &mut rng);
    println!(
        "workload: {} ({} flows, {} MiB total)\n",
        workload.name,
        workload.len(),
        workload.total_bytes() >> 20
    );

    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>8}",
        "LB", "max FCT(us)", "avg FCT(us)", "drops", "ECN"
    );
    for lb in [
        LbKind::Ecmp,
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let mut exp = Experiment::new("quickstart", fabric.clone(), lb, workload.clone());
        exp.seed = 7;
        let summary = exp.run().summary;
        assert!(summary.completed, "workload did not complete");
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8} {:>8}",
            summary.lb,
            summary.max_fct.as_us_f64(),
            summary.avg_fct.as_us_f64(),
            summary.counters.total_drops(),
            summary.counters.ecn_marks,
        );
    }
    println!("\nECMP suffers hash collisions; the per-packet sprayers spread them away.");
}
