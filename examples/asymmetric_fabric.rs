//! Asymmetric fabric: one ToR uplink degrades to half rate; REPS skews
//! traffic off the slow link while OPS splits evenly and is capped by it.
//!
//! Reproduces the §4.3.2 microscopic scenario (Fig. 4), printing the
//! per-uplink traffic split each balancer converged to.
//!
//! Run with: `cargo run --release --example asymmetric_fabric`

use reps_repro::prelude::*;

fn main() {
    let fabric = FatTreeConfig::two_tier(16, 1);
    let n = fabric.n_hosts();
    let topo = Topology::build(fabric.clone(), 11);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];

    println!("scenario: ToR0 uplink #0 degraded 400G -> 200G, tornado 8 MiB\n");
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let workload = tornado(n, 8 << 20);
        let mut exp = Experiment::new("asym", fabric.clone(), lb, workload);
        exp.failures = FailurePlan::none().with(Failure::Degrade {
            pair,
            at: Time::ZERO,
            bps: 200_000_000_000,
        });
        exp.track = TrackLinks::TorUplinks(0);
        exp.seed = 11;
        exp.deadline = Time::from_secs(5);
        let res = exp.run();
        let s = &res.summary;
        assert!(s.completed);
        println!(
            "{}: max FCT {:.1} us, drops {}",
            s.lb,
            s.max_fct.as_us_f64(),
            s.counters.total_drops()
        );
        // Traffic split across the 8 uplinks (port 0 is the slow one).
        let tor0 = &res.engine.topo.switches[0];
        let mut shares = Vec::new();
        let mut total = 0u64;
        for link in tor0.up_links.iter() {
            let bytes: u64 = res
                .engine
                .stats
                .link_series(link)
                .map(|se| se.bucket_bytes.iter().sum())
                .unwrap_or(0);
            shares.push(bytes);
            total += bytes;
        }
        print!("   uplink share:");
        for (i, b) in shares.iter().enumerate() {
            print!(" p{i}={:.1}%", *b as f64 / total.max(1) as f64 * 100.0);
        }
        println!("\n");
    }
    println!("REPS's cached entropies mirror the 200G link's reduced ACK rate,");
    println!("so its share of traffic drops toward half of a healthy port's.");
}
