//! Integration tests for fabric features the figures rely on: packet
//! trimming, bit-error injection, ECMP failover reconvergence, and the
//! FPGA profile's mixed link rates.

use reps_repro::prelude::*;

#[test]
fn trimming_replaces_timeouts_under_congestion() {
    // With trimming on, congestion overflow produces NACK-driven recovery
    // instead of RTO stalls: far fewer timeouts for the same incast.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let mut timeouts = Vec::new();
    let mut trims = Vec::new();
    for trimming in [false, true] {
        let w = incast(fabric.n_hosts(), 16, HostId(0), 2 << 20);
        let mut exp = Experiment::new(
            "trim",
            fabric.clone(),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        exp.sim.trimming = trimming;
        exp.seed = 33;
        exp.deadline = Time::from_secs(10);
        let s = exp.run().summary;
        assert!(s.completed, "incast (trimming={trimming}) stalled");
        timeouts.push(s.counters.timeouts);
        trims.push(s.counters.trims);
    }
    assert_eq!(trims[0], 0, "no trims expected when disabled");
    assert!(trims[1] > 0, "trimming must engage under a 16:1 incast");
    assert!(
        timeouts[1] < timeouts[0] || timeouts[0] == 0,
        "trimming should not increase timeouts: {timeouts:?}"
    );
}

#[test]
fn bit_error_links_lose_packets_but_flows_recover() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let topo = Topology::build(fabric.clone(), 35);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let mut rng = netsim::rng::Rng64::new(35);
    let w = permutation(fabric.n_hosts(), 2 << 20, &mut rng);
    let mut exp = Experiment::new("ber", fabric, LbKind::Reps(RepsConfig::default()), w);
    exp.failures = FailurePlan::none().with(Failure::BitError {
        pair,
        at: Time::ZERO,
        p: 0.01,
        duration: None,
    });
    exp.seed = 35;
    exp.deadline = Time::from_secs(10);
    let s = exp.run().summary;
    assert!(s.completed, "BER run stalled");
    assert!(s.counters.drops_bit_error > 0, "BER must drop something");
    assert!(s.counters.retransmissions > 0);
}

#[test]
fn ecmp_failover_reroutes_after_reconvergence_delay() {
    // With routing reconvergence enabled, even static ECMP eventually stops
    // hashing onto a dead link — drops stop growing after the delay.
    let fabric = FatTreeConfig::two_tier(16, 1);
    let mut drops = Vec::new();
    for failover in [None, Some(Time::from_us(50))] {
        let topo = Topology::build(fabric.clone(), 37);
        let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
        let mut rng = netsim::rng::Rng64::new(37);
        let w = permutation(fabric.n_hosts(), 4 << 20, &mut rng);
        let mut exp = Experiment::new(
            "failover",
            fabric.clone(),
            LbKind::Ops { evs_size: 1 << 16 },
            w,
        );
        exp.sim.ecmp_failover = failover;
        exp.failures = FailurePlan::none().with(Failure::Cable {
            pair,
            at: Time::from_us(20),
            duration: None,
        });
        exp.seed = 37;
        exp.deadline = Time::from_secs(10);
        let s = exp.run().summary;
        assert!(s.completed);
        drops.push(s.counters.drops_link_down);
    }
    // Without reconvergence, blackhole drops accrue for the whole run;
    // with a 50 us delay they stop once routing converges, leaving only the
    // pre-convergence window.
    assert!(
        drops[1] * 2 <= drops[0],
        "reconvergence should cut blackhole drops well down: {drops:?}"
    );
}

#[test]
fn fpga_profile_uses_faster_fabric_links() {
    let fabric = FatTreeConfig::two_tier_custom(2, 8, 4);
    let topo = Topology::build(fabric.clone(), 39);
    let mut exp = Experiment::new(
        "fpga",
        fabric,
        LbKind::Reps(RepsConfig::default()),
        tornado(16, 1 << 20),
    );
    exp.sim = SimConfig::fpga_testbed();
    exp.seed = 39;
    exp.deadline = Time::from_secs(10);
    let engine = exp.build();
    // Host links at 100 G, spine links at 400 G.
    let host_up = engine.topo.host_up[0];
    assert_eq!(engine.links[host_up.index()].rate_bps, 100_000_000_000);
    let spine = topo.tor_uplink_pairs(SwitchId(0))[0].0;
    assert_eq!(engine.links[spine.index()].rate_bps, 400_000_000_000);
    // And the workload completes on this profile.
    let s = exp.run().summary;
    assert!(s.completed);
}

#[test]
fn adaptive_routing_balances_better_than_hash_under_skew() {
    // Switch-side adaptive routing (Adaptive RoCE stand-in) should spread a
    // skewed offered load with fewer ECN marks than oblivious hashing.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let mut marks = Vec::new();
    for lb in [LbKind::Ops { evs_size: 1 << 16 }, LbKind::AdaptiveRoce] {
        let w = tornado(fabric.n_hosts(), 4 << 20);
        let mut exp = Experiment::new("ar", fabric.clone(), lb, w);
        exp.seed = 41;
        exp.deadline = Time::from_secs(10);
        let s = exp.run().summary;
        assert!(s.completed);
        marks.push(s.counters.ecn_marks);
    }
    assert!(
        marks[1] <= marks[0],
        "adaptive routing should not mark more than OPS: {marks:?}"
    );
}
