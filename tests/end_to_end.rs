//! Cross-crate integration tests: full simulations exercising the public
//! API end to end, checking the paper's headline *shapes* (who wins, by
//! roughly what factor) rather than absolute microseconds.

use reps_repro::prelude::*;

fn run(
    fabric: &FatTreeConfig,
    lb: LbKind,
    workload: workloads::spec::Workload,
    failures: FailurePlan,
    seed: u64,
) -> Summary {
    let mut exp = Experiment::new("it", fabric.clone(), lb, workload);
    exp.failures = failures;
    exp.seed = seed;
    exp.deadline = Time::from_secs(10);
    exp.run().summary
}

#[test]
fn every_load_balancer_completes_a_permutation() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let rtt = SimConfig::paper_default().base_rtt(3);
    for lb in LbKind::paper_lineup(rtt) {
        let mut rng = netsim::rng::Rng64::new(1);
        let w = permutation(fabric.n_hosts(), 512 << 10, &mut rng);
        let s = run(&fabric, lb.clone(), w, FailurePlan::none(), 1);
        assert!(s.completed, "{} did not complete", lb.label());
        assert_eq!(s.fg_flows, fabric.n_hosts() as usize);
    }
}

#[test]
fn deterministic_across_runs() {
    // Identical seeds must give bit-identical results (the repo's core
    // reproducibility guarantee).
    let fabric = FatTreeConfig::two_tier(8, 1);
    let results: Vec<Summary> = (0..2)
        .map(|_| {
            let mut rng = netsim::rng::Rng64::new(42);
            let w = permutation(fabric.n_hosts(), 1 << 20, &mut rng);
            run(
                &fabric,
                LbKind::Reps(RepsConfig::default()),
                w,
                FailurePlan::none(),
                42,
            )
        })
        .collect();
    assert_eq!(results[0].max_fct, results[1].max_fct);
    assert_eq!(results[0].avg_fct, results[1].avg_fct);
    assert_eq!(results[0].counters, results[1].counters);
}

#[test]
fn different_seeds_differ() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let fcts: Vec<Time> = [1u64, 2]
        .iter()
        .map(|&seed| {
            let mut rng = netsim::rng::Rng64::new(seed);
            let w = permutation(fabric.n_hosts(), 1 << 20, &mut rng);
            run(
                &fabric,
                LbKind::Ops { evs_size: 1 << 16 },
                w,
                FailurePlan::none(),
                seed,
            )
            .max_fct
        })
        .collect();
    assert_ne!(
        fcts[0], fcts[1],
        "seeds should shift the stochastic details"
    );
}

#[test]
fn spraying_beats_ecmp_on_tornado() {
    // The paper's headline symmetric-network result, in miniature.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let w = tornado(fabric.n_hosts(), 2 << 20);
    let ecmp = run(&fabric, LbKind::Ecmp, w.clone(), FailurePlan::none(), 3);
    let reps = run(
        &fabric,
        LbKind::Reps(RepsConfig::default()),
        w,
        FailurePlan::none(),
        3,
    );
    assert!(ecmp.completed && reps.completed);
    let speedup = ecmp.max_fct.as_ps() as f64 / reps.max_fct.as_ps() as f64;
    assert!(speedup > 1.5, "REPS vs ECMP speedup only {speedup:.2}x");
}

#[test]
fn reps_survives_failure_far_better_than_ops() {
    // §4.3.3: under a mid-run cable failure REPS must beat OPS clearly on
    // both completion time and blackhole drops.
    let fabric = FatTreeConfig::two_tier(16, 1);
    let topo = Topology::build(fabric.clone(), 5);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let plan = FailurePlan::none().with(Failure::Cable {
        pair,
        at: Time::from_us(30),
        duration: None,
    });
    let mut rng = netsim::rng::Rng64::new(5);
    let w = permutation(fabric.n_hosts(), 4 << 20, &mut rng);
    let ops = run(
        &fabric,
        LbKind::Ops { evs_size: 1 << 16 },
        w.clone(),
        plan.clone(),
        5,
    );
    let reps = run(&fabric, LbKind::Reps(RepsConfig::default()), w, plan, 5);
    assert!(ops.completed && reps.completed);
    assert!(
        reps.max_fct.as_ps() * 2 < ops.max_fct.as_ps(),
        "REPS {} vs OPS {} under failure",
        reps.max_fct,
        ops.max_fct
    );
    assert!(
        reps.counters.drops_link_down * 2 < ops.counters.drops_link_down,
        "REPS drops {} vs OPS drops {}",
        reps.counters.drops_link_down,
        ops.counters.drops_link_down
    );
}

#[test]
fn reps_adapts_to_degraded_uplink() {
    // §4.3.2: with one uplink at half rate, REPS must finish well ahead of
    // OPS (which splits traffic evenly and is capped by the slow link).
    let fabric = FatTreeConfig::two_tier(16, 1);
    let topo = Topology::build(fabric.clone(), 7);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let plan = FailurePlan::none().with(Failure::Degrade {
        pair,
        at: Time::ZERO,
        bps: 200_000_000_000,
    });
    let w = tornado(fabric.n_hosts(), 8 << 20);
    let ops = run(
        &fabric,
        LbKind::Ops { evs_size: 1 << 16 },
        w.clone(),
        plan.clone(),
        7,
    );
    let reps = run(&fabric, LbKind::Reps(RepsConfig::default()), w, plan, 7);
    assert!(
        (reps.max_fct.as_ps() as f64) < ops.max_fct.as_ps() as f64 * 0.8,
        "REPS {} not clearly faster than OPS {} under asymmetry",
        reps.max_fct,
        ops.max_fct
    );
}

#[test]
fn ring_allreduce_is_lb_insensitive() {
    // §4.3.1: "the ring AllReduce has the same performance for most load
    // balancing algorithms" — no congestion can accumulate on a ring.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let w = ring_allreduce(fabric.n_hosts(), 8 << 20);
    let runtimes: Vec<f64> = [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
        LbKind::Ecmp,
    ]
    .iter()
    .map(|lb| {
        let s = run(&fabric, lb.clone(), w.clone(), FailurePlan::none(), 9);
        assert!(s.completed);
        s.makespan.as_us_f64()
    })
    .collect();
    let max = runtimes.iter().cloned().fold(0.0, f64::max);
    let min = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.25,
        "ring AllReduce spread too wide: {runtimes:?}"
    );
}

#[test]
fn three_tier_fabric_works_end_to_end() {
    let fabric = FatTreeConfig::three_tier(4, 1);
    let mut rng = netsim::rng::Rng64::new(11);
    let w = permutation(fabric.n_hosts(), 1 << 20, &mut rng);
    let s = run(
        &fabric,
        LbKind::Reps(RepsConfig::default()),
        w,
        FailurePlan::none(),
        11,
    );
    assert!(s.completed);
    assert_eq!(s.fg_flows, 16);
}

#[test]
fn oversubscribed_fabric_works_end_to_end() {
    let fabric = FatTreeConfig::two_tier(16, 3); // 3:1 oversubscription.
    let mut rng = netsim::rng::Rng64::new(13);
    let w = permutation(fabric.n_hosts(), 512 << 10, &mut rng);
    let s = run(
        &fabric,
        LbKind::Reps(RepsConfig::default()),
        w,
        FailurePlan::none(),
        13,
    );
    assert!(s.completed);
}

#[test]
fn incast_is_cc_bound_not_lb_bound() {
    // §4.3.1: incast performance is driven by congestion control — the
    // per-packet sprayers land together, and even ECMP "performs well"
    // (within a collision-sized constant, not 3-6x as in tornado).
    let fabric = FatTreeConfig::two_tier(8, 1);
    let w = incast(fabric.n_hosts(), 8, HostId(0), 1 << 20);
    let fcts: Vec<f64> = [
        LbKind::Ecmp,
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ]
    .iter()
    .map(|lb| {
        let s = run(&fabric, lb.clone(), w.clone(), FailurePlan::none(), 15);
        assert!(s.completed);
        s.max_fct.as_us_f64()
    })
    .collect();
    let spray_ratio = fcts[1].max(fcts[2]) / fcts[1].min(fcts[2]);
    assert!(spray_ratio < 1.2, "OPS vs REPS spread too wide: {fcts:?}");
    assert!(
        fcts[0] / fcts[2] < 2.0,
        "ECMP should stay within a small factor on incast: {fcts:?}"
    );
}

#[test]
fn eqds_and_internal_cc_complete_with_reps() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    for cc in [CcKind::Eqds, CcKind::Internal] {
        let mut rng = netsim::rng::Rng64::new(17);
        let w = permutation(fabric.n_hosts(), 1 << 20, &mut rng);
        let mut exp = Experiment::new("cc", fabric.clone(), LbKind::Reps(RepsConfig::default()), w);
        exp.cc = cc;
        exp.seed = 17;
        exp.deadline = Time::from_secs(10);
        let s = exp.run().summary;
        assert!(s.completed, "{cc:?} stalled");
    }
}

#[test]
fn coalescing_variants_complete_and_cut_acks() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let mut ctrl = Vec::new();
    for (ratio, variant) in [
        (1, CoalesceVariant::Plain),
        (8, CoalesceVariant::Plain),
        (8, CoalesceVariant::CarryEvs),
        (8, CoalesceVariant::ReuseEvs),
    ] {
        let mut rng = netsim::rng::Rng64::new(19);
        let w = permutation(fabric.n_hosts(), 1 << 20, &mut rng);
        let mut exp = Experiment::new(
            "coalesce",
            fabric.clone(),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        exp.coalesce = CoalesceConfig::ratio(ratio, variant);
        exp.seed = 19;
        exp.deadline = Time::from_secs(10);
        let s = exp.run().summary;
        assert!(s.completed, "ratio {ratio} {variant:?} stalled");
        ctrl.push(s.counters.ctrl_tx);
    }
    assert!(
        ctrl[1] < ctrl[0] / 4,
        "coalescing 8:1 must cut control packets: {ctrl:?}"
    );
}

#[test]
fn mixed_traffic_classes_complete_and_separate() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let n = fabric.n_hosts();
    let mut rng = netsim::rng::Rng64::new(23);
    let main = permutation(n, 1 << 20, &mut rng);
    let bg = tornado(n, 128 << 10);
    let mut exp = Experiment::new("mixed", fabric, LbKind::Reps(RepsConfig::default()), main);
    exp.background = Some((bg, LbKind::Ecmp));
    exp.seed = 23;
    exp.deadline = Time::from_secs(10);
    let s = exp.run().summary;
    assert!(s.completed);
    assert_eq!(s.fg_flows, n as usize);
    assert!(s.bg_max_fct.is_some());
}

#[test]
fn dc_trace_workload_runs_at_load() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let mut rng = netsim::rng::Rng64::new(29);
    let w = poisson_trace(
        fabric.n_hosts(),
        0.6,
        Time::from_us(100),
        400_000_000_000,
        &SizeCdf::websearch(),
        &mut rng,
    );
    assert!(!w.is_empty());
    let s = run(
        &fabric,
        LbKind::Reps(RepsConfig::default()),
        w,
        FailurePlan::none(),
        29,
    );
    assert!(s.completed, "trace flows must all finish after load stops");
}

#[test]
fn adaptive_roce_uses_switch_side_routing() {
    let fabric = FatTreeConfig::two_tier(8, 1);
    let w = tornado(fabric.n_hosts(), 1 << 20);
    let s = run(&fabric, LbKind::AdaptiveRoce, w, FailurePlan::none(), 31);
    assert!(s.completed);
}
